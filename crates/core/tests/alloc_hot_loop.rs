//! Counting-allocator assertion for the in-place hot loop: after a warmup
//! that grows every scratch buffer to its high-water mark, a steady-state
//! destroy → repair → revert/commit cycle over `SraState` performs no
//! per-iteration heap allocations. This is the PR 1 "allocation-free hot
//! loop" claim plus this PR's hoisted worker setup, pinned as a test
//! instead of folklore.
//!
//! "No per-iteration" rather than literally zero: the per-machine
//! `shards_on` lists still grow (amortized, doubling) whenever a machine
//! hosts more shards than it ever has before, so a long steady phase may
//! see a handful of one-off growth events — O(log) in the high-water
//! mark, never O(iterations). The assertion bounds them at 1% of the
//! measured iterations.
//!
//! The counter is process-global, so this file holds exactly one test —
//! parallel tests in the same binary would race the counter.

use rand::{rngs::StdRng, SeedableRng};
use rex_cluster::{Assignment, Objective, ObjectiveKind};
use rex_core::{default_destroys_in_place, default_repairs_in_place, SraProblem};
use rex_lns::{LnsProblem, LnsProblemInPlace};
use rex_workload::synthetic::{generate, DemandFamily, Placement, SynthConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (alloc, alloc_zeroed, realloc) made through the
/// global allocator. Deallocations are free to happen — the hot loop's
/// invariant is about *acquiring* memory.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_hot_loop_does_not_allocate() {
    let inst = generate(&SynthConfig {
        n_machines: 24,
        n_exchange: 3,
        n_shards: 200,
        stringency: 0.85,
        family: DemandFamily::Correlated,
        placement: Placement::Hotspot(0.4),
        seed: 13,
        ..Default::default()
    })
    .expect("generate");
    // No plan checks: `plan_migration` builds fresh schedules and is not
    // part of the per-iteration hot path this test pins down.
    let problem =
        SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad)).without_plan_checks();
    let initial = Assignment::from_initial(&inst);
    assert!(LnsProblem::is_feasible(&problem, &initial));

    let destroys = default_destroys_in_place(32);
    let repairs = default_repairs_in_place();
    let mut rng = StdRng::seed_from_u64(7);
    let mut state = problem.make_state(initial);

    let cycle = |state: &mut _, rng: &mut StdRng, intensity: f64, iters: usize| {
        for i in 0..iters {
            let d = &destroys[i % destroys.len()];
            let r = &repairs[i % repairs.len()];
            d.destroy(&problem, state, intensity, rng);
            let repaired = r.repair(&problem, state, rng);
            // Alternate accept/reject so both the commit path and the
            // undo-log revert path stay on the measured loop. Commits stay
            // far below RESYNC_EVERY, so no resync runs here (resync
            // reuses its buffers anyway, but it is not per-iteration
            // work).
            if repaired && i % 2 == 0 && problem.state_feasible(state) {
                problem.commit(state);
            } else {
                problem.revert(state);
            }
        }
    };

    // Warmup at the highest intensity the steady phase will see: grows the
    // undo log, detach scratch, and every operator's candidate buffers to
    // their high-water marks.
    cycle(&mut state, &mut rng, 0.25, 400);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    cycle(&mut state, &mut rng, 0.2, 600);
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    let grown = after - before;
    assert!(
        grown <= 6,
        "steady-state destroy/repair/commit/revert allocated {grown} times \
         in 600 iterations; only rare shards_on high-water growth is allowed"
    );

    // The kernel-backed fleet totals are scan_with reductions over fixed
    // ResourceVec rows: strictly allocation-free, even repeated. (Same
    // single-test file because the counter is process-global.)
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut acc = 0.0;
    for _ in 0..100 {
        acc += inst.total_demand().sum() + inst.total_capacity().sum();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(acc.is_finite());
    assert_eq!(
        after - before,
        0,
        "total_demand/total_capacity must not allocate"
    );
}
