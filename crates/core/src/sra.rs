//! The SRA driver: search → plan → verify → report.

use crate::destroy::default_destroys_in_place;
use crate::problem::SraProblem;
use crate::repair::default_repairs_in_place;
use rex_cluster::metrics::MigrationStats;
use rex_cluster::{
    plan_migration, verify_schedule, Assignment, BalanceReport, ClusterError, Instance, MachineId,
    MigrationPlan, Objective, PlannerConfig,
};
use rex_lns::{
    portfolio_search_recorded, Acceptance, Engine, EngineStats, HillClimb, InPlaceModel, LnsConfig,
    LnsProblem, PortfolioConfig, RecordToRecord, SimulatedAnnealing, TrajectoryPoint,
};
use rex_obs::Recorder;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Which acceptance criterion SRA uses (ablation knob).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AcceptanceKind {
    /// Simulated annealing tuned for normalized-load objectives (default).
    SimulatedAnnealing,
    /// Strict hill climbing.
    HillClimb,
    /// Record-to-record travel with the given relative deviation.
    RecordToRecord(f64),
}

impl AcceptanceKind {
    /// Instantiates the criterion for a run of `iters` iterations.
    pub fn build(&self, iters: u64) -> Box<dyn Acceptance> {
        match *self {
            AcceptanceKind::SimulatedAnnealing => {
                Box::new(SimulatedAnnealing::for_normalized_loads(iters as usize))
            }
            AcceptanceKind::HillClimb => Box::new(HillClimb),
            AcceptanceKind::RecordToRecord(dev) => Box::new(RecordToRecord::new(dev)),
        }
    }
}

/// SRA configuration.
#[derive(Clone, Copy, Debug)]
pub struct SraConfig {
    /// LNS iterations (per worker).
    pub iters: u64,
    /// Optional wall-clock budget (per worker).
    pub time_limit: Option<Duration>,
    /// Objective to minimize.
    pub objective: Objective,
    /// Acceptance criterion.
    pub acceptance: AcceptanceKind,
    /// Destroy intensity range (fraction of shards).
    pub intensity: (f64, f64),
    /// Maximum shards detached per iteration.
    pub destroy_cap: usize,
    /// Parallel portfolio width; `1` runs the serial engine (which also
    /// records operator stats and the convergence trajectory).
    pub workers: usize,
    /// Cooperative decomposition width: `> 1` replaces the search with the
    /// partition → parallel sub-solve → merge → boundary-repair rounds of
    /// [`crate::decomposed`] (clamped to half the machine count), and
    /// `workers` is ignored. `0` or `1` keeps the monolithic search.
    pub partitions: usize,
    /// Hierarchical decomposition depth (only meaningful when
    /// `partitions > 1`). `1` (the default) keeps the flat single-level
    /// rounds; `d > 1` recursively re-partitions every neighborhood into
    /// `partitions` children down to depth `d`, solves the leaves, and
    /// repairs each internal level bottom-up before the global boundary
    /// pass — the POP-style web-scale path of [`crate::decomposed`].
    pub depth: usize,
    /// Deterministic seed.
    pub seed: u64,
    /// Migration-planner configuration.
    pub planner: PlannerConfig,
    /// Record the best-objective trajectory (serial runs only).
    pub log_trajectory: bool,
}

impl Default for SraConfig {
    fn default() -> Self {
        Self {
            iters: 10_000,
            time_limit: None,
            objective: Objective::default(),
            acceptance: AcceptanceKind::SimulatedAnnealing,
            intensity: (0.02, 0.25),
            destroy_cap: 64,
            workers: 1,
            partitions: 0,
            depth: 1,
            seed: 42,
            planner: PlannerConfig::default(),
            log_trajectory: false,
        }
    }
}

/// Everything SRA produces for one instance.
#[derive(Clone, Debug)]
pub struct SraResult {
    /// The final (target) assignment.
    pub assignment: Assignment,
    /// The verified, transient-feasible migration schedule reaching it.
    pub plan: MigrationPlan,
    /// Objective value of the final assignment.
    pub objective_value: f64,
    /// Balance report of the initial placement.
    pub initial_report: BalanceReport,
    /// Balance report of the final placement.
    pub final_report: BalanceReport,
    /// Migration cost summary.
    pub migration: MigrationStats,
    /// The `k_return` vacant machines handed back (borrowed exchange
    /// machines first, then originally-loaded machines that were emptied).
    pub returned_machines: Vec<MachineId>,
    /// LNS iterations executed (summed over workers).
    pub iterations: u64,
    /// Wall-clock time of the whole solve.
    pub elapsed: Duration,
    /// Engine statistics (serial runs only).
    pub stats: Option<EngineStats>,
    /// Convergence trajectory (serial runs with `log_trajectory` only).
    pub trajectory: Vec<TrajectoryPoint>,
    /// True if the plan-every fallback search was needed.
    pub fallback_used: bool,
}

impl SraResult {
    /// Relative peak-load improvement over the initial placement.
    pub fn peak_improvement(&self) -> f64 {
        self.final_report
            .peak_improvement_over(&self.initial_report)
    }
}

/// Runs SRA on `inst`.
///
/// 1. validates the instance,
/// 2. searches for the best capacity- and vacancy-feasible target placement
///    (serial ALNS, or a rayon portfolio when `cfg.workers > 1`),
/// 3. plans a transient-feasible migration schedule to it; if planning
///    deadlocks (rare — the exchange machines provide staging space), the
///    search is re-run with per-candidate plannability checks,
/// 4. independently verifies the schedule with the step simulator,
/// 5. selects the `k_return` machines to hand back.
pub fn solve(inst: &Instance, cfg: &SraConfig) -> Result<SraResult, ClusterError> {
    solve_with_drain(inst, cfg, &[])
}

/// Runs SRA with a set of **draining machines**: a planned decommission.
/// Drained machines must end completely vacant (on top of the `k_return`
/// quota — they do not count as the returned compensation) and never
/// receive shards; they keep serving while their shards migrate away, so
/// the schedule may still copy from them.
///
/// # Errors
///
/// Besides [`solve`]'s errors, fails with
/// [`ClusterError::VacancyShortfall`]-style planning errors when the
/// drained machines' shards cannot be feasibly evacuated at all.
pub fn solve_with_drain(
    inst: &Instance,
    cfg: &SraConfig,
    drain: &[MachineId],
) -> Result<SraResult, ClusterError> {
    solve_traced(inst, cfg, drain, &mut Recorder::noop())
}

/// [`solve_with_drain`] narrating the solve into `rec` when it is
/// recording: a `("sra", "solve")` span wrapping phase spans for the
/// search, the migration planning (and the plan-every fallback when it
/// triggers), and the independent verification. The LNS layer's own events
/// nest inside the search phase. With a [`Recorder::Noop`] this is exactly
/// [`solve_with_drain`].
pub fn solve_traced(
    inst: &Instance,
    cfg: &SraConfig,
    drain: &[MachineId],
    rec: &mut Recorder,
) -> Result<SraResult, ClusterError> {
    inst.validate()?;
    let start = Instant::now();
    if rec.is_active() {
        rec.span_open(
            "sra",
            "solve",
            vec![
                ("machines", inst.n_machines().into()),
                ("shards", inst.n_shards().into()),
                ("k_return", inst.k_return.into()),
                ("drain", drain.len().into()),
                ("seed", cfg.seed.into()),
                ("iters", cfg.iters.into()),
                ("workers", cfg.workers.into()),
            ],
        );
    }

    // Global bests are gated on plannability (`accept_best`), so the
    // search result is schedulable by construction in all but pathological
    // cases; the fallback below is a safety net.
    let mut problem = SraProblem::new(inst, cfg.objective).with_drain(drain);
    problem.planner = cfg.planner;
    if rec.is_active() {
        rec.span_open("sra", "search", vec![]);
    }
    let searched = run_search(&problem, cfg, cfg.seed, rec);
    if rec.is_active() {
        rec.span_close("sra", "search", vec![("ok", searched.is_ok().into())]);
    }
    let (best, iterations, stats, trajectory) = searched?;

    if rec.is_active() {
        rec.span_open("sra", "plan", vec![]);
    }
    let planned = plan_migration(inst, &inst.initial, best.placement(), &cfg.planner);
    if rec.is_active() {
        rec.span_close(
            "sra",
            "plan",
            vec![(
                "outcome",
                match &planned {
                    Ok(_) => "ok",
                    Err(ClusterError::PlanningDeadlock { .. }) => "deadlock",
                    Err(_) => "error",
                }
                .into(),
            )],
        );
    }
    let (best, plan, iterations, fallback_used, stats, trajectory) = match planned {
        Ok(plan) => (best, plan, iterations, false, stats, trajectory),
        Err(ClusterError::PlanningDeadlock { .. }) => {
            // Fallback: a slower search whose feasibility check requires
            // plannability, so its best is schedulable by construction
            // (the search starts from a plannable solution, hence the
            // result is never worse than that start).
            let strict = SraProblem::new(inst, cfg.objective)
                .with_drain(drain)
                .with_plan_every(cfg.planner);
            // The fallback must stay monolithic: plan-every feasibility is
            // a global property the decomposed merge cannot track.
            let strict_cfg = SraConfig {
                iters: (cfg.iters / 4).max(500),
                partitions: 0,
                ..*cfg
            };
            if rec.is_active() {
                rec.add("sra.fallbacks", 1);
                rec.span_open("sra", "fallback", vec![("iters", strict_cfg.iters.into())]);
            }
            let fallen = run_search(&strict, &strict_cfg, cfg.seed.wrapping_add(1), rec);
            if rec.is_active() {
                rec.span_close("sra", "fallback", vec![("ok", fallen.is_ok().into())]);
            }
            let (b2, it2, stats2, traj2) = fallen?;
            let plan = plan_migration(inst, &inst.initial, b2.placement(), &cfg.planner)
                .expect("plan-every search only accepts plannable candidates");
            (b2, plan, iterations + it2, true, stats2, traj2)
        }
        Err(e) => return Err(e),
    };

    // Independent verification: the planner and the simulator implement the
    // transient semantics separately; disagreement is a bug worth failing
    // loudly on.
    if rec.is_active() {
        rec.span_open(
            "sra",
            "verify",
            vec![("batches", plan.batches.len().into())],
        );
    }
    let verified = verify_schedule(inst, &inst.initial, best.placement(), &plan);
    if rec.is_active() {
        rec.span_close("sra", "verify", vec![("ok", verified.is_ok().into())]);
    }
    verified?;
    best.check_target(inst)?;

    let initial_asg = Assignment::from_initial(inst);
    let objective_value = cfg.objective.value(inst, &best, &inst.initial);
    let migration = MigrationStats::compute(inst, &plan);
    // Draining machines leave the fleet; they are not the loan repayment,
    // so exclude them before choosing the k_return machines to hand back.
    let mut returned_machines = best.vacant_machines();
    returned_machines.retain(|m| !drain.contains(m));
    returned_machines.sort_by_key(|m| (!inst.machines[m.idx()].exchange, m.idx()));
    returned_machines.truncate(inst.k_return);

    if rec.is_active() {
        rec.gauge("sra.objective", objective_value);
        rec.span_close(
            "sra",
            "solve",
            vec![
                ("objective", objective_value.into()),
                ("iterations", iterations.into()),
                ("fallback_used", fallback_used.into()),
                ("plan_batches", plan.batches.len().into()),
                ("returned", returned_machines.len().into()),
            ],
        );
    }

    Ok(SraResult {
        objective_value,
        initial_report: BalanceReport::compute(inst, &initial_asg),
        final_report: BalanceReport::compute(inst, &best),
        migration,
        returned_machines,
        iterations,
        elapsed: start.elapsed(),
        stats,
        trajectory,
        fallback_used,
        plan,
        assignment: best,
    })
}

/// Runs the search phase: the cooperative decomposed solver when
/// `cfg.partitions > 1`, otherwise the serial engine or the parallel
/// portfolio. All paths drive the **one** unified `Engine<M>` spine over
/// the allocation-free in-place edit model (`InPlaceModel` over
/// `SraState`). Public so the benches can time the search without the
/// planning/verification phases.
pub fn run_search(
    problem: &SraProblem<'_>,
    cfg: &SraConfig,
    seed: u64,
    rec: &mut Recorder,
) -> Result<(Assignment, u64, Option<EngineStats>, Vec<TrajectoryPoint>), ClusterError> {
    if cfg.partitions > 1 {
        return crate::decomposed::decomposed_search(problem, cfg, seed, rec);
    }
    let initial = starting_solution(problem)?;
    let lns_cfg = LnsConfig {
        max_iters: cfg.iters,
        time_limit: cfg.time_limit,
        intensity: cfg.intensity,
        log_trajectory: cfg.log_trajectory,
        ..Default::default()
    };
    if cfg.workers <= 1 {
        let engine = Engine::in_place(
            problem,
            initial,
            default_destroys_in_place(cfg.destroy_cap),
            default_repairs_in_place(),
            cfg.acceptance.build(cfg.iters),
            lns_cfg,
        );
        let out = engine.run_recorded(seed, rec);
        Ok((out.best, out.iterations, Some(out.stats), out.trajectory))
    } else {
        let pcfg = PortfolioConfig {
            workers: cfg.workers,
            engine: lns_cfg,
        };
        let out = portfolio_search_recorded(
            &initial,
            seed,
            &pcfg,
            |start| {
                InPlaceModel::new(
                    problem,
                    start,
                    default_destroys_in_place(cfg.destroy_cap),
                    default_repairs_in_place(),
                )
            },
            || cfg.acceptance.build(cfg.iters),
            rec,
        );
        let iters = out.worker_results.iter().map(|w| w.iterations).sum();
        Ok((out.best, iters, None, Vec::new()))
    }
}

/// The search's starting solution: the instance's initial placement —
/// except when machines are draining, in which case their shards are
/// greedily evacuated first (largest first, best admissible host), because
/// the engine requires a feasible start and feasibility now demands the
/// drained machines be vacant.
pub(crate) fn starting_solution(problem: &SraProblem<'_>) -> Result<Assignment, ClusterError> {
    let inst = problem.inst;
    let mut asg = Assignment::from_initial(inst);
    let mut to_evacuate: Vec<_> = (0..inst.n_machines())
        .map(MachineId::from)
        .filter(|&m| problem.is_drained(m))
        .flat_map(|m| asg.shards_on(m).to_vec())
        .collect();
    if to_evacuate.is_empty() {
        // Nothing to move — but draining an already-vacant machine can
        // still be infeasible (e.g. draining the only machine that could
        // satisfy the return quota), so validate before handing the
        // engine its start.
        return if problem.is_feasible(&asg) {
            Ok(asg)
        } else {
            Err(ClusterError::VacancyShortfall {
                required: problem.reserved_vacancies(),
                found: asg.vacant_count(),
            })
        };
    }
    to_evacuate.sort_by(|&a, &b| {
        inst.demand(b)
            .norm()
            .partial_cmp(&inst.demand(a).norm())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &s in &to_evacuate {
        asg.detach_shard(inst, s);
    }
    let mut budget = problem.vacancy_budget(&asg);
    for s in to_evacuate {
        let mut best: Option<(MachineId, f64)> = None;
        for mi in 0..inst.n_machines() {
            let m = MachineId::from(mi);
            if asg.is_vacant(m) && budget == 0 {
                continue;
            }
            if let Some(score) = problem.insertion_score(&asg, s, m) {
                if best.is_none_or(|(_, b)| score < b) {
                    best = Some((m, score));
                }
            }
        }
        let Some((m, _)) = best else {
            return Err(ClusterError::VacancyShortfall {
                required: problem.reserved_vacancies(),
                found: asg.vacant_count(),
            });
        };
        if asg.is_vacant(m) {
            budget -= 1;
        }
        asg.attach_shard(inst, s, m);
    }
    if !problem.is_feasible(&asg) {
        return Err(ClusterError::VacancyShortfall {
            required: problem.reserved_vacancies(),
            found: asg.vacant_count(),
        });
    }
    Ok(asg)
}

/// Chooses which `k_return` vacant machines to hand back: borrowed exchange
/// machines first (returning the loan in kind), then emptied original
/// machines, in id order for determinism.
pub fn select_returned(inst: &Instance, asg: &Assignment) -> Vec<MachineId> {
    let mut vacant = asg.vacant_machines();
    vacant.sort_by_key(|m| (!inst.machines[m.idx()].exchange, m.idx()));
    vacant.truncate(inst.k_return);
    vacant
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::{InstanceBuilder, ObjectiveKind};

    /// Imbalanced: one hot machine, one cool machine, one exchange machine.
    fn imbalanced() -> Instance {
        let mut b = InstanceBuilder::new(1).alpha(0.1).label("imbalanced");
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        for _ in 0..8 {
            b.shard(&[1.0], 1.0, m0);
        }
        b.shard(&[1.0], 1.0, m1);
        b.build().unwrap()
    }

    fn quick_cfg() -> SraConfig {
        SraConfig {
            iters: 2_000,
            objective: Objective::pure(ObjectiveKind::PeakLoad),
            ..Default::default()
        }
    }

    #[test]
    fn solve_improves_balance() {
        let inst = imbalanced();
        let res = solve(&inst, &quick_cfg()).unwrap();
        assert!(res.initial_report.peak >= 0.8);
        assert!(
            res.final_report.peak < res.initial_report.peak,
            "final {} vs initial {}",
            res.final_report.peak,
            res.initial_report.peak
        );
        assert!(res.peak_improvement() > 0.0);
        assert!(!res.fallback_used);
    }

    #[test]
    fn solve_result_is_internally_consistent() {
        let inst = imbalanced();
        let res = solve(&inst, &quick_cfg()).unwrap();
        // The plan reaches the assignment and is transient-feasible (solve
        // verifies, but re-verify here against tampering regressions).
        verify_schedule(&inst, &inst.initial, res.assignment.placement(), &res.plan).unwrap();
        res.assignment.check_target(&inst).unwrap();
        assert_eq!(res.returned_machines.len(), inst.k_return);
        for &m in &res.returned_machines {
            assert!(res.assignment.is_vacant(m));
        }
    }

    #[test]
    fn solve_is_deterministic() {
        let inst = imbalanced();
        let a = solve(&inst, &quick_cfg()).unwrap();
        let b = solve(&inst, &quick_cfg()).unwrap();
        assert_eq!(a.objective_value, b.objective_value);
        assert_eq!(a.assignment.placement(), b.assignment.placement());
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn parallel_solve_works_and_is_deterministic() {
        let inst = imbalanced();
        let cfg = SraConfig {
            workers: 3,
            ..quick_cfg()
        };
        let a = solve(&inst, &cfg).unwrap();
        let b = solve(&inst, &cfg).unwrap();
        assert_eq!(a.objective_value, b.objective_value);
        assert!(a.final_report.peak <= a.initial_report.peak);
        assert!(
            a.stats.is_none(),
            "portfolio runs do not carry engine stats"
        );
    }

    #[test]
    fn never_worse_than_initial() {
        for seed in 0..4 {
            let inst = imbalanced();
            let cfg = SraConfig {
                seed,
                iters: 300,
                ..quick_cfg()
            };
            let res = solve(&inst, &cfg).unwrap();
            assert!(res.final_report.peak <= res.initial_report.peak + 1e-9);
        }
    }

    #[test]
    fn trajectory_recorded_when_requested() {
        let inst = imbalanced();
        let cfg = SraConfig {
            log_trajectory: true,
            ..quick_cfg()
        };
        let res = solve(&inst, &cfg).unwrap();
        assert!(!res.trajectory.is_empty());
        assert!(res.stats.is_some());
    }

    #[test]
    fn returned_machines_prefer_exchange() {
        let inst = imbalanced();
        let res = solve(&inst, &quick_cfg()).unwrap();
        // If the exchange machine ended vacant it must be the one returned.
        let x = MachineId(2);
        if res.assignment.is_vacant(x) {
            assert_eq!(res.returned_machines, vec![x]);
        } else {
            // Exchange machine kept in service: an original machine is
            // returned instead — the membership exchange in action.
            assert!(!inst.machines[res.returned_machines[0].idx()].exchange);
        }
    }

    #[test]
    fn zero_exchange_instance_still_solves() {
        let mut b = InstanceBuilder::new(1).label("no-exchange");
        let m0 = b.machine(&[10.0]);
        let _m1 = b.machine(&[10.0]);
        for _ in 0..6 {
            b.shard(&[1.0], 1.0, m0);
        }
        let inst = b.build().unwrap();
        assert_eq!(inst.k_return, 0);
        let res = solve(&inst, &quick_cfg()).unwrap();
        assert!(res.final_report.peak <= 0.4 + 1e-9);
        assert!(res.returned_machines.is_empty());
    }

    #[test]
    fn acceptance_kinds_all_run() {
        let inst = imbalanced();
        for acc in [
            AcceptanceKind::SimulatedAnnealing,
            AcceptanceKind::HillClimb,
            AcceptanceKind::RecordToRecord(0.02),
        ] {
            let cfg = SraConfig {
                acceptance: acc,
                iters: 500,
                ..quick_cfg()
            };
            let res = solve(&inst, &cfg).unwrap();
            assert!(
                res.final_report.peak <= res.initial_report.peak + 1e-9,
                "{acc:?}"
            );
        }
    }

    #[test]
    fn drain_empties_the_drained_machine() {
        let inst = imbalanced(); // m0 hot, m1 cool, m2 exchange
        let res = solve_with_drain(&inst, &quick_cfg(), &[MachineId(0)]).unwrap();
        assert!(
            res.assignment.is_vacant(MachineId(0)),
            "drained machine must end vacant"
        );
        res.assignment.check_target(&inst).unwrap();
        // The returned machine is never the drained one.
        assert!(!res.returned_machines.contains(&MachineId(0)));
        assert_eq!(res.returned_machines.len(), inst.k_return);
        // The schedule verifies (checked inside solve; re-check anyway).
        verify_schedule(&inst, &inst.initial, res.assignment.placement(), &res.plan).unwrap();
    }

    #[test]
    fn drain_fails_when_no_room_exists() {
        // One loaded machine, nothing else: draining it is impossible.
        let mut b = InstanceBuilder::new(1).label("no-room");
        let m0 = b.machine(&[10.0]);
        b.shard(&[8.0], 1.0, m0);
        let inst = b.build().unwrap();
        assert!(solve_with_drain(&inst, &quick_cfg(), &[m0]).is_err());
    }

    #[test]
    fn drain_is_deterministic() {
        let inst = imbalanced();
        let a = solve_with_drain(&inst, &quick_cfg(), &[MachineId(0)]).unwrap();
        let b = solve_with_drain(&inst, &quick_cfg(), &[MachineId(0)]).unwrap();
        assert_eq!(a.assignment.placement(), b.assignment.placement());
    }

    #[test]
    fn invalid_instance_is_rejected() {
        let mut inst = imbalanced();
        inst.k_return = 99;
        assert!(solve(&inst, &quick_cfg()).is_err());
    }

    #[test]
    fn traced_solve_matches_plain_solve() {
        let inst = imbalanced();
        let plain = solve(&inst, &quick_cfg()).unwrap();
        let mut rec = Recorder::active();
        let traced = solve_traced(&inst, &quick_cfg(), &[], &mut rec).unwrap();
        assert_eq!(plain.objective_value, traced.objective_value);
        assert_eq!(plain.assignment.placement(), traced.assignment.placement());
        assert_eq!(plain.iterations, traced.iterations);

        // Phase spans are balanced and nested under the solve span.
        assert_eq!(rec.open_spans(), 0);
        for phase in ["solve", "search", "plan", "verify"] {
            assert!(
                rec.events()
                    .iter()
                    .any(|e| e.layer == "sra" && e.name == phase),
                "missing sra phase span: {phase}"
            );
        }
        // The LNS layer narrated its iterations inside the search phase.
        assert_eq!(rec.counter("lns.iterations"), traced.iterations);
    }

    #[test]
    fn traced_solve_is_byte_identical_across_runs() {
        let inst = imbalanced();
        let mut ra = Recorder::active();
        let _ = solve_traced(&inst, &quick_cfg(), &[], &mut ra).unwrap();
        let mut rb = Recorder::active();
        let _ = solve_traced(&inst, &quick_cfg(), &[], &mut rb).unwrap();
        assert_eq!(ra.to_jsonl(), rb.to_jsonl());
        assert_eq!(ra.summary(), rb.summary());
        assert!(!ra.to_jsonl().is_empty());
    }

    #[test]
    fn traced_parallel_solve_emits_worker_summaries() {
        let inst = imbalanced();
        let cfg = SraConfig {
            workers: 3,
            ..quick_cfg()
        };
        let mut rec = Recorder::active();
        let res = solve_traced(&inst, &cfg, &[], &mut rec).unwrap();
        let workers = rec
            .events()
            .iter()
            .filter(|e| e.layer == "lns" && e.name == "worker")
            .count();
        assert_eq!(workers, 3);
        assert_eq!(rec.open_spans(), 0);
        let plain = solve(&inst, &cfg).unwrap();
        assert_eq!(plain.objective_value, res.objective_value);
    }
}
