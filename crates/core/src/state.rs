//! The in-place search state for SRA: one working assignment plus the
//! incremental caches that make delta objective evaluation cheap.
//!
//! The clone-based hot loop copies the whole `Assignment` every iteration
//! and re-derives peak load, mean-square load, and migration cost from
//! scratch — `O(shards + machines·dims)` per candidate. [`SraState`]
//! instead tracks those quantities incrementally under the edits of one
//! destroy/repair burst:
//!
//! * `loads[m]` — the normalized load of every machine, refreshed in
//!   `O(dims)` whenever a shard is detached from / attached to `m`;
//! * `sumsq` — `Σ loads²` (un-normalized), updated as
//!   `sumsq += new² − old²`;
//! * `peak` — maintained eagerly while loads only grow past it, marked
//!   dirty when a peak-holding machine loses load and lazily rescanned on
//!   the next objective evaluation;
//! * `mig_cost` — the total move cost of shards placed off their initial
//!   machine, adjusted by `±move_cost` on detach/attach;
//! * `vacant` — the number of vacant machines, adjusted on transitions.
//!
//! Rejections restore the committed baseline **bit-exactly**: the
//! [`rex_cluster::UndoLog`] restores placements and snapshots first-touch
//! usage vectors, per-machine loads are recomputed from those restored
//! usages (a pure function, hence bit-identical), and the scalar
//! accumulators are copied back from the [`ScalarBase`] taken at the last
//! commit. Accumulator drift (`sumsq`, `mig_cost` are running sums of
//! floating-point deltas) is bounded by a full resynchronization every
//! [`RESYNC_EVERY`] commits.

use crate::problem::SraProblem;
use rex_cluster::{plan_migration, Assignment, Instance, MachineId, ShardId, UndoLog};
use rex_lns::{LnsProblem, LnsProblemInPlace};

/// Full cache resynchronization period, in commits. With the compensated
/// accumulators below, each update leaves at most one *delta-sized*
/// rounding error (~`eps·|delta|`, not `eps·|sum|`), so drift stays
/// orders of magnitude below the 1e-9 test tolerance even over millions
/// of commits — the periodic resync is a belt-and-braces backstop, not a
/// load-bearing correction, and fires effectively never in real runs
/// (it used to run every 4096 commits to launder naive-summation drift).
const RESYNC_EVERY: u32 = 1 << 20;

/// Neumaier (Kahan–Babuška) compensated accumulator.
///
/// `value()` returns `sum + compensation`. Each `add` performs the
/// classic two-branch compensation step: whichever operand is smaller in
/// magnitude contributes its rounding loss to `c`. The result is a pure
/// function of the add sequence — no data-dependent reordering — so the
/// bit-determinism contracts (same seed / any thread count → same bytes)
/// hold exactly as they did for naive `+=`.
#[derive(Clone, Copy, Debug, Default)]
struct Compensated {
    sum: f64,
    c: f64,
}

impl Compensated {
    /// Resets to an exactly-known value (used by resync).
    #[inline]
    fn set(&mut self, v: f64) {
        self.sum = v;
        self.c = 0.0;
    }

    /// Adds `x` with Neumaier compensation.
    #[inline]
    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.c += (self.sum - t) + x;
        } else {
            self.c += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    fn value(&self) -> f64 {
        self.sum + self.c
    }
}

/// Scalar accumulators snapshotted at each commit, restored on revert.
/// Includes the compensation terms, so a revert restores the accumulators
/// bit-exactly — compensation state and all.
#[derive(Clone, Copy, Debug)]
struct ScalarBase {
    peak: f64,
    peak_dirty: bool,
    sumsq: Compensated,
    mig_cost: Compensated,
    vacant: usize,
}

/// Mutable search state for the in-place SRA hot loop.
///
/// Operators access it through [`SraState::detach`] / [`SraState::attach`]
/// (which keep every cache coherent and feed the undo log) and the
/// read-only accessors; the engine drives revert/commit through
/// [`LnsProblemInPlace`].
pub struct SraState {
    pub(crate) asg: Assignment,
    /// Detached shards awaiting re-insertion.
    pub(crate) removed: Vec<ShardId>,
    pub(crate) undo: UndoLog,
    /// Cached normalized load per machine.
    pub(crate) loads: Vec<f64>,
    peak: f64,
    peak_dirty: bool,
    /// Un-normalized `Σ loads²`, compensated (error-bounded, see
    /// [`Compensated`]).
    sumsq: Compensated,
    /// Total move cost of shards currently off their initial machine,
    /// compensated.
    mig_cost: Compensated,
    /// Cached vacant-machine count.
    vacant: usize,
    /// `k_return` plus the number of draining machines (fixed per run).
    reserved: usize,
    base: ScalarBase,
    commits_since_resync: u32,
    /// Total periodic resynchronizations performed (observability).
    resyncs: u64,
    /// Machine-id scratch used by revert (touched-machine list).
    touched: Vec<MachineId>,
    /// Index scratch for destroy operators (shard/machine pools).
    pub(crate) pool: Vec<u32>,
    /// Scoring scratch for destroy operators.
    pub(crate) scored: Vec<(f64, u32)>,
    /// Best/second-best cache for the incremental regret-2 repair.
    pub(crate) regret: Vec<RegretEntry>,
    /// Per-shard migration penalty (`insertion_penalty`, assignment-free):
    /// together with `loads` it lower-bounds any insertion score, letting
    /// repair scans skip machines that cannot beat the running incumbent.
    pub(crate) pen: Vec<f64>,
    /// Machine ids sorted by `(load, id)` ascending — the repair scan
    /// order. Rebuilt at the start of each in-place repair, repositioned
    /// after each attach.
    pub(crate) order: Vec<u32>,
    /// Cached `inst.demand(s).norm()` per shard (static).
    pub(crate) demand_norm: Vec<f64>,
    /// Machine capacities packed row-major (row `m` = machine `m`), the
    /// static sibling of `Assignment::usage_rows` — lets resync run the
    /// fused cache-blocked `ratio_scan_rows` kernel over two flat arrays.
    caps: rex_cluster::PackedVecs,
}

/// Cached top-3 insertion choices of one detached shard, sorted by score.
/// Slots 0 and 1 (best / second-best) are always value-exact — they define
/// the regret. Slot 2 may be [`REGRET_ABSENT`] (provably no third feasible
/// machine) or [`REGRET_UNKNOWN`] (not tracked; its score then stores a
/// lower bound on every machine outside the entry). Invariant: any machine
/// not named in `m` scores at least `s[2]`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RegretEntry {
    pub(crate) m: [u32; 3],
    pub(crate) s: [f64; 3],
}

/// Slot sentinel: no such feasible machine exists (score `INFINITY`).
pub(crate) const REGRET_ABSENT: u32 = u32::MAX;
/// Slot sentinel: a third-best exists but is not tracked; the slot's score
/// is a lower bound on it (and on all other unscanned machines).
pub(crate) const REGRET_UNKNOWN: u32 = u32::MAX - 1;

impl SraState {
    fn new(p: &SraProblem<'_>, asg: Assignment) -> Self {
        let inst = p.inst;
        let n = inst.n_machines();
        let mut state = Self {
            asg,
            removed: Vec::with_capacity(inst.n_shards().min(256)),
            undo: UndoLog::new(),
            loads: vec![0.0; n],
            peak: 0.0,
            peak_dirty: false,
            sumsq: Compensated::default(),
            mig_cost: Compensated::default(),
            vacant: 0,
            reserved: p.reserved_vacancies(),
            base: ScalarBase {
                peak: 0.0,
                peak_dirty: false,
                sumsq: Compensated::default(),
                mig_cost: Compensated::default(),
                vacant: 0,
            },
            commits_since_resync: 0,
            resyncs: 0,
            touched: Vec::new(),
            pool: Vec::new(),
            scored: Vec::new(),
            regret: Vec::new(),
            pen: (0..inst.n_shards())
                .map(|i| p.insertion_penalty(ShardId::from(i)))
                .collect(),
            order: Vec::with_capacity(n),
            demand_norm: (0..inst.n_shards())
                .map(|i| inst.demand(ShardId::from(i)).norm())
                .collect(),
            caps: rex_cluster::PackedVecs::from_vecs(
                inst.dims,
                inst.machines.iter().map(|m| &m.capacity),
            ),
        };
        state.resync(inst);
        state.save_base();
        state
    }

    /// The current working assignment.
    pub fn solution(&self) -> &Assignment {
        &self.asg
    }

    /// Shards detached by the current burst, not yet re-inserted.
    pub fn removed(&self) -> &[ShardId] {
        &self.removed
    }

    /// Cached normalized machine loads (index = machine id).
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Cached vacant-machine count.
    pub fn vacant_count(&self) -> usize {
        self.vacant
    }

    /// The vacancy budget for a repair pass, from the cached vacant count
    /// (the in-place equivalent of [`SraProblem::vacancy_budget`]).
    pub fn vacancy_budget(&self) -> usize {
        self.vacant.saturating_sub(self.reserved)
    }

    /// Detaches `s`, logging the edit and pushing it onto `removed`.
    pub(crate) fn detach(&mut self, p: &SraProblem<'_>, s: ShardId) {
        let inst = p.inst;
        let from = self.asg.detach_shard_logged(inst, s, &mut self.undo);
        self.refresh_load(inst, from);
        if self.asg.is_vacant(from) {
            self.vacant += 1;
        }
        if from != inst.initial[s.idx()] {
            self.mig_cost.add(-inst.shards[s.idx()].move_cost);
        }
        self.removed.push(s);
    }

    /// Attaches detached shard `s` to `m`, logging the edit. The caller
    /// owns the `removed` bookkeeping (repairs drain the list).
    pub(crate) fn attach(&mut self, p: &SraProblem<'_>, s: ShardId, m: MachineId) {
        let inst = p.inst;
        if self.asg.is_vacant(m) {
            self.vacant -= 1;
        }
        self.asg.attach_shard_logged(inst, s, m, &mut self.undo);
        self.refresh_load(inst, m);
        if m != inst.initial[s.idx()] {
            self.mig_cost.add(inst.shards[s.idx()].move_cost);
        }
    }

    /// Recomputes `loads[m]` from the assignment's usage and folds the
    /// change into `sumsq` and the (lazily maintained) peak.
    fn refresh_load(&mut self, inst: &Instance, m: MachineId) {
        let i = m.idx();
        let old = self.loads[i];
        let new = self.asg.usage_rows().max_ratio(i, inst.capacity(m));
        self.loads[i] = new;
        self.sumsq.add(new * new - old * old);
        if !self.peak_dirty {
            if new >= self.peak {
                self.peak = new; // grew past the peak: still exact
            } else if old >= self.peak {
                self.peak_dirty = true; // the peak holder shrank: rescan later
            }
        }
    }

    /// The current peak load, rescanning the cached loads if stale. The
    /// rescan is the chunked branch-free [`rex_cluster::kernels`] pass over
    /// the flat struct-of-arrays load vector.
    fn current_peak(&mut self) -> f64 {
        if self.peak_dirty {
            self.peak = rex_cluster::kernels::peak(&self.loads);
            self.peak_dirty = false;
        }
        self.peak
    }

    /// Rebuilds every cache from the assignment (drift resynchronization).
    ///
    /// One fused, cache-blocked pass over the packed usage and capacity
    /// arenas ([`rex_cluster::kernels::ratio_scan_rows`]) refreshes the
    /// load vector and its aggregate in the same traversal. The kernel's
    /// aggregate is bit-identical to `scan(&loads)` — the same kernel
    /// `Assignment::load_stats` uses — so the resynced `sumsq` rounds
    /// identically to a full objective recompute.
    fn resync(&mut self, inst: &Instance) {
        let scan = rex_cluster::kernels::ratio_scan_rows(
            inst.dims,
            self.asg.usage_rows().as_flat(),
            self.caps.as_flat(),
            &mut self.loads,
        );
        self.sumsq.set(scan.sumsq);
        self.peak = scan.peak.max(0.0);
        self.peak_dirty = false;
        self.vacant = self.asg.vacant_count();
        self.mig_cost.set(
            self.asg
                .placement()
                .iter()
                .zip(&inst.initial)
                .enumerate()
                .filter(|&(i, (a, b))| a != b && !self.asg.is_detached(ShardId::from(i)))
                .map(|(i, _)| inst.shards[i].move_cost)
                .sum(),
        );
    }

    fn save_base(&mut self) {
        self.base = ScalarBase {
            peak: self.peak,
            peak_dirty: self.peak_dirty,
            sumsq: self.sumsq,
            mig_cost: self.mig_cost,
            vacant: self.vacant,
        };
    }
}

impl LnsProblemInPlace for SraProblem<'_> {
    type State = SraState;

    fn make_state(&self, sol: Assignment) -> SraState {
        SraState::new(self, sol)
    }

    fn state_objective(&self, state: &mut SraState) -> f64 {
        let n = self.inst.n_machines() as f64;
        let balance = match self.objective.kind {
            rex_cluster::ObjectiveKind::PeakLoad => state.current_peak(),
            rex_cluster::ObjectiveKind::L2Imbalance => (state.sumsq.value() / n).sqrt(),
        };
        let mut value = balance;
        let total = self.total_move_cost();
        if self.objective.lambda != 0.0 && total > 0.0 {
            value += self.objective.lambda * state.mig_cost.value() / total;
        }
        if self.smoothing > 0.0 {
            value += self.smoothing * state.sumsq.value() / n;
        }
        value
    }

    fn state_feasible(&self, state: &SraState) -> bool {
        if !state.removed.is_empty() || state.vacant < state.reserved {
            return false;
        }
        // Inductive invariant: the committed baseline is feasible, so only
        // machines this burst touched can have gone over capacity or
        // violated the drain condition.
        for m in state.undo.touched_machines() {
            if !state
                .asg
                .usage_rows()
                .fits_within(m.idx(), self.inst.capacity(m))
            {
                return false;
            }
            if self.is_drained(m) && !state.asg.is_vacant(m) {
                return false;
            }
        }
        if self.plan_every {
            plan_migration(
                self.inst,
                &self.inst.initial,
                state.asg.placement(),
                &self.planner,
            )
            .is_ok()
        } else {
            true
        }
    }

    fn state_accept_best(&self, state: &SraState) -> bool {
        self.accept_best(&state.asg)
    }

    fn snapshot(&self, state: &SraState) -> Assignment {
        state.asg.clone()
    }

    fn revert(&self, state: &mut SraState) {
        let inst = self.inst;
        let mut touched = std::mem::take(&mut state.touched);
        touched.clear();
        touched.extend(state.undo.touched_machines());
        state.asg.revert(inst, &mut state.undo);
        for &m in &touched {
            // Pure function of the bit-exactly restored usage → bit-exact.
            state.loads[m.idx()] = state.asg.usage_rows().max_ratio(m.idx(), inst.capacity(m));
        }
        state.touched = touched;
        state.peak = state.base.peak;
        state.peak_dirty = state.base.peak_dirty;
        state.sumsq = state.base.sumsq;
        state.mig_cost = state.base.mig_cost;
        state.vacant = state.base.vacant;
        state.removed.clear();
    }

    fn commit(&self, state: &mut SraState) {
        debug_assert!(state.removed.is_empty(), "committing an incomplete state");
        state.undo.commit();
        state.commits_since_resync += 1;
        if state.commits_since_resync >= RESYNC_EVERY {
            state.resync(self.inst);
            state.commits_since_resync = 0;
            state.resyncs += 1;
        }
        state.save_base();
    }

    // Observability hooks: cheap field reads, only consulted when a
    // recording `Recorder` is attached to the engine.

    fn state_destroyed(&self, state: &SraState) -> usize {
        state.removed.len()
    }

    fn state_undo_depth(&self, state: &SraState) -> usize {
        state.undo.len()
    }

    fn state_resyncs(&self, state: &SraState) -> u64 {
        state.resyncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use rex_cluster::{InstanceBuilder, Objective, ObjectiveKind};

    fn inst() -> rex_cluster::Instance {
        let mut b = InstanceBuilder::new(2).label("state");
        let m0 = b.machine(&[10.0, 10.0]);
        let m1 = b.machine(&[10.0, 10.0]);
        let m2 = b.machine(&[10.0, 10.0]);
        let _x = b.exchange_machine(&[10.0, 10.0]);
        b.shard(&[4.0, 1.0], 2.0, m0);
        b.shard(&[3.0, 2.0], 1.0, m0);
        b.shard(&[1.0, 1.0], 1.5, m1);
        b.shard(&[1.5, 0.5], 1.0, m1);
        b.shard(&[2.0, 2.0], 1.0, m2);
        b.build().unwrap()
    }

    fn full_objective(p: &SraProblem<'_>, asg: &Assignment) -> f64 {
        LnsProblem::objective(p, asg)
    }

    #[test]
    fn make_state_matches_full_objective() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::default());
        let asg = Assignment::from_initial(&inst);
        let full = full_objective(&p, &asg);
        let mut state = p.make_state(asg);
        assert!((p.state_objective(&mut state) - full).abs() < 1e-12);
    }

    #[test]
    fn revert_restores_bit_exactly() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::default());
        let mut state = p.make_state(Assignment::from_initial(&inst));
        let before_placement = state.asg.placement().to_vec();
        let before_loads = state.loads.clone();
        let before_obj = p.state_objective(&mut state);

        state.detach(&p, ShardId(0));
        state.detach(&p, ShardId(2));
        let removed: Vec<ShardId> = state.removed.drain(..).collect();
        for s in removed {
            state.attach(&p, s, MachineId(2));
        }
        assert_ne!(state.asg.placement(), before_placement.as_slice());

        LnsProblemInPlace::revert(&p, &mut state);
        assert_eq!(state.asg.placement(), before_placement.as_slice());
        assert_eq!(state.loads, before_loads, "loads must restore bit-exactly");
        assert_eq!(p.state_objective(&mut state), before_obj);
        state.asg.validate_consistency(&inst).unwrap();
    }

    #[test]
    fn delta_objective_tracks_full_recompute_over_random_edits() {
        let inst = inst();
        for kind in [ObjectiveKind::PeakLoad, ObjectiveKind::L2Imbalance] {
            let p = SraProblem::new(&inst, Objective { kind, lambda: 0.3 });
            let mut state = p.make_state(Assignment::from_initial(&inst));
            let mut rng = StdRng::seed_from_u64(7);
            for round in 0..500 {
                let s = ShardId::from(rng.random_range(0..inst.n_shards()));
                state.detach(&p, s);
                // Reattach somewhere it fits (possibly where it came from).
                let mut target = None;
                for mi in 0..inst.n_machines() {
                    let m = MachineId::from(mi);
                    if state.asg.fits(&inst, s, m) {
                        target = Some(m);
                        if rng.random_range(0..2) == 1 {
                            break;
                        }
                    }
                }
                state.removed.clear();
                state.attach(&p, s, target.expect("shard fits somewhere"));
                let delta = p.state_objective(&mut state);
                let full = full_objective(&p, &state.asg);
                assert!(
                    (delta - full).abs() < 1e-9,
                    "round {round}: delta {delta} vs full {full}"
                );
                if round % 3 == 0 {
                    LnsProblemInPlace::revert(&p, &mut state);
                } else {
                    LnsProblemInPlace::commit(&p, &mut state);
                }
            }
        }
    }

    #[test]
    fn compensated_accumulators_hold_without_resync() {
        // 20k edit bursts — far past the old 4096-commit resync period and
        // nowhere near the new one, so compensation alone must keep the
        // running `sumsq`/`mig_cost` within the 1e-9 band of a from-scratch
        // recompute.
        let inst = inst();
        let p = SraProblem::new(
            &inst,
            Objective {
                kind: ObjectiveKind::L2Imbalance,
                lambda: 0.3,
            },
        );
        let mut state = p.make_state(Assignment::from_initial(&inst));
        let mut rng = StdRng::seed_from_u64(91);
        for round in 0..20_000u32 {
            let s = ShardId::from(rng.random_range(0..inst.n_shards()));
            state.detach(&p, s);
            let mut target = None;
            for mi in 0..inst.n_machines() {
                let m = MachineId::from(mi);
                if state.asg.fits(&inst, s, m) {
                    target = Some(m);
                    if rng.random_range(0..2) == 1 {
                        break;
                    }
                }
            }
            state.removed.clear();
            state.attach(&p, s, target.expect("shard fits somewhere"));
            LnsProblemInPlace::commit(&p, &mut state);
            if round % 977 == 0 {
                let delta = p.state_objective(&mut state);
                let full = full_objective(&p, &state.asg);
                assert!(
                    (delta - full).abs() < 1e-9,
                    "round {round}: delta {delta} vs full {full}"
                );
            }
        }
        assert_eq!(state.resyncs, 0, "resync must not have fired");
    }

    #[test]
    fn state_feasibility_agrees_with_clone_check() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::default());
        let mut state = p.make_state(Assignment::from_initial(&inst));
        assert_eq!(p.state_feasible(&state), p.is_feasible(&state.asg));

        // Incomplete state is infeasible.
        state.detach(&p, ShardId(0));
        assert!(!p.state_feasible(&state));

        // Occupying the reserved vacancy is infeasible.
        let s = state.removed.pop().unwrap();
        state.attach(&p, s, MachineId(3));
        assert_eq!(p.state_feasible(&state), p.is_feasible(&state.asg));
        assert!(!p.state_feasible(&state));
        LnsProblemInPlace::revert(&p, &mut state);
        assert!(p.state_feasible(&state));
    }

    #[test]
    fn vacancy_budget_matches_clone_computation() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::default());
        let mut state = p.make_state(Assignment::from_initial(&inst));
        assert_eq!(state.vacancy_budget(), p.vacancy_budget(&state.asg));
        state.detach(&p, ShardId(4)); // vacates m2
        assert_eq!(state.vacancy_budget(), p.vacancy_budget(&state.asg));
        assert_eq!(state.vacancy_budget(), 1);
    }
}
