//! # rex-core
//!
//! **SRA — the Shard Reassignment Algorithm** of *"Improving Load Balance
//! via Resource Exchange in Large-Scale Search Engines"* (ICPP 2020),
//! reconstructed from the paper's abstract (see the repository's DESIGN.md
//! for the source-text caveat).
//!
//! SRA approximates the paper's integer program with a large neighborhood
//! search over shard placements:
//!
//! * the incumbent is a complete [`rex_cluster::Assignment`];
//! * **destroy operators** ([`destroy`]) detach a subset of shards — at
//!   random, from the hottest machines, by demand similarity (Shaw), or by
//!   evacuating one machine entirely (the *machine-exchange* move that lets
//!   an originally-loaded machine be handed back in place of a borrowed
//!   one);
//! * **repair operators** ([`repair`]) re-insert the detached shards
//!   greedily, by regret-2 priority, or with randomized sampling — all of
//!   them refusing insertions that would overload a machine or leave fewer
//!   than `k_return` vacant machines;
//! * the **acceptance criterion** (simulated annealing by default) and
//!   adaptive operator weights come from `rex-lns`;
//! * the hot loop runs **in place** over an [`state::SraState`]: operators
//!   mutate one working assignment under an undo log, the objective is
//!   tracked incrementally (delta evaluation with periodic
//!   resynchronization), and rejected candidates are reverted instead of
//!   being re-cloned — see DESIGN.md's "Hot path & delta evaluation";
//! * the final incumbent must admit a **transient-feasible migration
//!   schedule** (planned and independently verified by
//!   `rex-cluster::migration`); if planning deadlocks, SRA re-runs the
//!   search with per-candidate plannability checks, which can never end
//!   worse than the (trivially plannable) initial placement.
//!
//! Entry point: [`sra::solve`] (serial or parallel portfolio, controlled by
//! [`sra::SraConfig::workers`]).

pub mod decomposed;
pub mod delta;
pub mod destroy;
pub mod options;
pub mod problem;
pub mod repair;
pub mod sra;
pub mod state;

pub use decomposed::decomposed_search;
pub use delta::{solve_delta, DeltaOutcome, TargetedRemoval};
pub use destroy::{
    default_destroys_in_place, MachineExchangeRemoval, RandomRemoval, RelatedRemoval,
    WorstMachineRemoval,
};
pub use options::{ConfigError, SolveOptions};
pub use problem::SraProblem;
pub use repair::{default_repairs_in_place, GreedyBestFit, RandomizedGreedy, Regret2Insert};
pub use sra::{
    run_search, solve, solve_traced, solve_with_drain, AcceptanceKind, SraConfig, SraResult,
};
pub use state::SraState;
