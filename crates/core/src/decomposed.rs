//! Cooperative decomposed SRA search: partition → parallel sub-solves →
//! merge → boundary repair, repeated for a fixed number of rounds.
//!
//! The monolithic portfolio (`workers = N`) runs N *duplicated* searches
//! over the whole fleet and keeps the best — N × iters full-fleet
//! iterations for one answer. The decomposed solver instead splits the
//! fleet into `k` machine neighborhoods ([`rex_cluster::partition_fleet`]),
//! runs one in-place LNS worker per neighborhood on a **sub-instance**
//! containing only that neighborhood's machines and shards, and splices
//! the per-partition solutions back together. Each covered iteration
//! touches `O(n/k)` machines instead of `O(n)`, so at equal iteration
//! budget the decomposed solve does roughly `k×` less scan work than the
//! portfolio — the source of the wall-clock win on a single core, and the
//! reason it also parallelizes cleanly when cores exist.
//!
//! One round:
//!
//! 1. **Partition** the fleet by current loads (LPT over machines; shards
//!    follow the machine hosting them). Partitions are disjoint in both
//!    machines and shards, so their solutions compose without conflicts.
//!    The global `k_return` vacancy quota is split into per-partition
//!    shares backed by each partition's own vacancies.
//! 2. **Sub-solve** every partition in parallel
//!    ([`rex_lns::cooperative_round`]) with seeds from
//!    [`rex_lns::round_seed`]`(seed, round, partition)` — fixed before the
//!    parallel section, so the result is bit-identical for any
//!    `REX_THREADS`.
//! 3. **Merge** by splicing each partition's placement into the global
//!    one (conflict-free by construction; capacity- and vacancy-feasible
//!    because every sub-solution is, and the quota shares sum to
//!    `k_return`).
//! 4. **Boundary repair**: a short serial LNS pass on the *global* problem
//!    starting from the merged placement. This is where shards cross
//!    partition borders, and where the global `plan_on_best` gate sees
//!    candidates against the true initial placement.
//!
//! Re-partitioning by the new loads each round rotates the neighborhood
//! structure, so shards trapped in an unlucky partition get fresh chances.
//!
//! ## Fidelity caveats (accepted, documented)
//!
//! Sub-instances use the **round-start placement as their initial**: the
//! sub-objective's migration-cost term and `α`-escapability are measured
//! from the round start, not the global initial. The boundary pass and the
//! final objective always use the global initial, and the returned best is
//! chosen by the *global* objective, so reported numbers are exact; only
//! the sub-searches' guidance is approximate. The global best is tracked
//! explicitly and seeded with the starting solution, so the decomposed
//! search never returns anything worse than the monolithic start.

use crate::destroy::default_destroys_in_place;
use crate::problem::SraProblem;
use crate::repair::default_repairs_in_place;
use crate::sra::{starting_solution, SraConfig};
use rex_cluster::{
    partition_fleet, partition_subfleet, Assignment, ClusterError, Instance, Machine, MachineId,
    PartitionSpec, Shard, ShardId,
};
use rex_lns::{
    cooperative_round, round_seed, Engine, EngineStats, InPlaceModel, LnsConfig, LnsProblem,
    RoundJob, TrajectoryPoint,
};
use rex_obs::Recorder;

/// Recombination rounds per solve. Each round re-partitions by current
/// loads, so this is also how many distinct neighborhood structures the
/// search explores.
pub const ROUNDS: u64 = 4;

/// Sub-instance for one partition, plus the maps back to the global ids.
struct SubCtx {
    /// Index of this partition in the round's partition list.
    part_idx: usize,
    /// The partition as its own instance (local dense ids).
    inst: Instance,
    /// Round-start placement in local ids (the sub-initial).
    start: Vec<MachineId>,
    /// Drained machines of this partition, in local ids.
    drain: Vec<MachineId>,
}

/// Builds the local sub-instance for one tree node (`part`). Local
/// machine `j` is `part.machines[j]`; local shard `j` is
/// `part.shards[j]`; the sub-initial is the current global placement
/// restricted to the node. Exchange flags are dropped — inside a node
/// every machine is just capacity — and the sub `k_return` is the node's
/// vacancy-quota share. `part_idx` is the node's job index (seed slot).
fn build_sub(
    inst: &Instance,
    current: &Assignment,
    part: &rex_cluster::PartitionSpec,
    part_idx: usize,
    is_drained: impl Fn(MachineId) -> bool,
    label: String,
) -> SubCtx {
    let mut local_of = vec![u32::MAX; inst.n_machines()];
    let machines: Vec<Machine> = part
        .machines
        .iter()
        .enumerate()
        .map(|(j, &m)| {
            local_of[m.idx()] = j as u32;
            Machine::new(MachineId::from(j), inst.machines[m.idx()].capacity)
        })
        .collect();
    let shards: Vec<Shard> = part
        .shards
        .iter()
        .enumerate()
        .map(|(j, &s)| {
            Shard::new(
                ShardId::from(j),
                *inst.demand(s),
                inst.shards[s.idx()].move_cost,
            )
        })
        .collect();
    let start: Vec<MachineId> = part
        .shards
        .iter()
        .map(|&s| MachineId::from(local_of[current.placement()[s.idx()].idx()] as usize))
        .collect();
    let drain: Vec<MachineId> = part
        .machines
        .iter()
        .filter(|&&m| is_drained(m))
        .map(|&m| MachineId::from(local_of[m.idx()] as usize))
        .collect();
    let sub_inst = Instance {
        dims: inst.dims,
        machines,
        shards,
        initial: start.clone(),
        k_return: part.vacancy_quota,
        alpha: inst.alpha,
        label,
    };
    debug_assert!(
        sub_inst.validate().is_ok(),
        "sub-instance of a feasible placement must validate"
    );
    SubCtx {
        part_idx,
        inst: sub_inst,
        start,
        drain,
    }
}

/// Runs the cooperative decomposed search (see module docs) and returns
/// `(best, iterations, stats, trajectory)` in [`crate::sra`]'s search
/// contract. Stats and trajectory are empty — per-worker engine stats do
/// not aggregate meaningfully across sub-instances.
///
/// Deterministic for a fixed `(problem, cfg, seed)` and byte-identical
/// across `REX_THREADS` settings: all seeds are fixed before each parallel
/// section, workers run untraced, and every trace event is emitted
/// serially after the round barrier.
pub fn decomposed_search(
    problem: &SraProblem<'_>,
    cfg: &SraConfig,
    seed: u64,
    rec: &mut Recorder,
) -> Result<(Assignment, u64, Option<EngineStats>, Vec<TrajectoryPoint>), ClusterError> {
    let inst = problem.inst;
    // At least two machines per partition, at least one partition.
    let k_eff = cfg.partitions.min(inst.n_machines() / 2).max(1);
    let drained: Vec<MachineId> = (0..inst.n_machines())
        .map(MachineId::from)
        .filter(|&m| problem.is_drained(m))
        .collect();

    let mut current = starting_solution(problem)?;
    let mut best = current.clone();
    let mut best_val = LnsProblem::objective(problem, &best);
    let mut iterations = 0u64;

    // Budget split: each partition worker gets the full per-worker budget
    // spread over the rounds (total covered iterations ≈ cfg.iters per
    // partition, each over an O(n/k) sub-instance); the serial boundary
    // pass gets a small slice of full-fleet iterations per round.
    let sub_iters = (cfg.iters / ROUNDS).max(1);
    let boundary_iters = (cfg.iters / (ROUNDS * 8)).max(50);
    let sub_tl = cfg.time_limit.map(|t| t / (2 * ROUNDS as u32));

    let depth = cfg.depth.max(1);

    if rec.is_active() {
        rec.span_open(
            "sra",
            "decomposed",
            vec![
                ("partitions", k_eff.into()),
                ("depth", depth.into()),
                ("rounds", ROUNDS.into()),
                ("sub_iters", sub_iters.into()),
                ("boundary_iters", boundary_iters.into()),
            ],
        );
    }

    for round in 0..ROUNDS {
        if depth > 1 {
            // Hierarchical (POP-style) round: recursive split, leaf
            // solves, bottom-up repairs, then the global boundary pass.
            // depth == 1 stays on the flat path below, bit-identical to
            // the pre-hierarchy behavior.
            let (next, round_iters, val) = hierarchical_round(
                problem,
                cfg,
                seed,
                round,
                k_eff,
                depth,
                &drained,
                &current,
                rec,
                sub_iters,
                boundary_iters,
                sub_tl,
            )?;
            current = next;
            iterations += round_iters;
            if val < best_val {
                best_val = val;
                best = current.clone();
            }
            continue;
        }
        let loads = current.loads(inst);
        let parts = partition_fleet(
            inst,
            current.placement(),
            &loads,
            k_eff,
            inst.k_return,
            &drained,
        );

        // Shardless partitions have nothing to search; their machines stay
        // untouched (and vacant) through the merge.
        let subs: Vec<SubCtx> = (0..parts.len())
            .filter(|&p| !parts[p].shards.is_empty())
            .map(|p| {
                build_sub(
                    inst,
                    &current,
                    &parts[p],
                    p,
                    |m| problem.is_drained(m),
                    format!("{}#r{round}p{p}", inst.label),
                )
            })
            .collect();
        let sub_problems: Vec<SraProblem<'_>> = subs
            .iter()
            .map(|sc| {
                // Plannability is a property of the *global* migration, so
                // sub-searches skip plan checks entirely; the boundary pass
                // and the final planning step gate on the real thing.
                let mut sp = SraProblem::new(&sc.inst, cfg.objective)
                    .with_drain(&sc.drain)
                    .without_plan_checks();
                sp.smoothing = problem.smoothing;
                sp
            })
            .collect();
        let jobs: Vec<RoundJob<InPlaceModel<'_, SraProblem<'_>>>> = sub_problems
            .iter()
            .zip(&subs)
            .map(|(sp, sc)| {
                Ok(RoundJob {
                    model: InPlaceModel::new(
                        sp,
                        Assignment::from_placement(&sc.inst, sc.start.clone())?,
                        default_destroys_in_place(cfg.destroy_cap),
                        default_repairs_in_place(),
                    ),
                    seed: round_seed(seed, round, sc.part_idx),
                })
            })
            .collect::<Result<_, ClusterError>>()?;

        let engine_cfg = LnsConfig {
            max_iters: sub_iters,
            time_limit: sub_tl,
            intensity: cfg.intensity,
            ..Default::default()
        };
        let outcomes = cooperative_round(jobs, engine_cfg, || cfg.acceptance.build(sub_iters));

        // Merge: splice every partition's placement back in. Disjointness
        // makes this conflict-free; each sub-solution is capacity-feasible
        // and keeps its vacancy-quota share, and the shares sum to
        // k_return, so the merged placement is globally feasible.
        let mut merged = current.placement().to_vec();
        for (sc, out) in subs.iter().zip(&outcomes) {
            let part = &parts[sc.part_idx];
            for (j, &s) in part.shards.iter().enumerate() {
                merged[s.idx()] = part.machines[out.best.placement()[j].idx()];
            }
            iterations += out.iterations;
        }
        let merged = Assignment::from_placement(inst, merged)?;

        if rec.is_active() {
            rec.span_open("sra", "round", vec![("round", round.into())]);
            for (sc, out) in subs.iter().zip(&outcomes) {
                rec.event(
                    "lns",
                    "partition",
                    vec![
                        ("round", round.into()),
                        ("partition", sc.part_idx.into()),
                        ("machines", parts[sc.part_idx].machines.len().into()),
                        ("shards", parts[sc.part_idx].shards.len().into()),
                        ("seed", round_seed(seed, round, sc.part_idx).into()),
                        ("objective", out.best_objective.into()),
                        ("iterations", out.iterations.into()),
                    ],
                );
            }
        }

        // Boundary repair on the global problem: cross-partition moves,
        // judged against the true initial placement with the usual
        // plan-on-best gating. Merged placements are feasible by
        // construction, so the engine's feasible-start requirement holds.
        let boundary_cfg = LnsConfig {
            max_iters: boundary_iters,
            time_limit: sub_tl,
            intensity: cfg.intensity,
            ..Default::default()
        };
        let engine = Engine::in_place(
            problem,
            merged,
            default_destroys_in_place(cfg.destroy_cap),
            default_repairs_in_place(),
            cfg.acceptance.build(boundary_iters),
            boundary_cfg,
        );
        let out = engine.run_recorded(round_seed(seed, round, k_eff), rec);
        iterations += out.iterations;
        current = out.best;

        let val = LnsProblem::objective(problem, &current);
        if val < best_val {
            best_val = val;
            best = current.clone();
        }
        if rec.is_active() {
            rec.span_close("sra", "round", vec![("objective", val.into())]);
        }
    }

    if rec.is_active() {
        rec.span_close(
            "sra",
            "decomposed",
            vec![
                ("best_objective", best_val.into()),
                ("iterations", iterations.into()),
            ],
        );
    }
    Ok((best, iterations, None, Vec::new()))
}

/// Recursively splits `node` to the requested depth, collecting leaves in
/// traversal (DFS) order and internal nodes (strictly below the root) per
/// level for the bottom-up repair sweep. A node splits only while levels
/// remain and it can give every child at least two machines; the root is
/// never stored — its repair is the round's global boundary pass.
/// Vacancy quotas are conserved at every split ([`partition_subfleet`]).
#[allow(clippy::too_many_arguments)]
fn split_rec(
    inst: &Instance,
    placement: &[MachineId],
    loads: &[f64],
    drained: &[MachineId],
    node: PartitionSpec,
    level: usize,
    depth: usize,
    k: usize,
    leaves: &mut Vec<PartitionSpec>,
    internal: &mut [Vec<PartitionSpec>],
) {
    if level >= depth || k < 2 || node.machines.len() < 2 * k {
        leaves.push(node);
        return;
    }
    let children = partition_subfleet(
        inst,
        placement,
        loads,
        &node.machines,
        &node.shards,
        k,
        node.vacancy_quota,
        drained,
    );
    if level > 0 {
        internal[level - 1].push(node);
    }
    for child in children {
        split_rec(
            inst,
            placement,
            loads,
            drained,
            child,
            level + 1,
            depth,
            k,
            leaves,
            internal,
        );
    }
}

/// One round of the depth-d hierarchical decomposition (POP-style):
/// recursive partition → leaf solves in one flat cooperative round →
/// bottom-up per-level internal-node repairs (machine-disjoint within a
/// level, plan checks off, each node holding its conserved vacancy
/// quota) → one global serial boundary repair with the usual plan
/// gating. Returns `(new current, iterations, global objective)`.
///
/// Determinism: every engine's seed is `round_seed(seed, round,
/// job_idx)` where `job_idx` numbers the engines launched this round in
/// fixed traversal order (leaves, then internal levels bottom-up, then
/// the global pass) — all assigned before any parallel section, so the
/// round is byte-identical for any `REX_THREADS`.
#[allow(clippy::too_many_arguments)]
fn hierarchical_round(
    problem: &SraProblem<'_>,
    cfg: &SraConfig,
    seed: u64,
    round: u64,
    k_eff: usize,
    depth: usize,
    drained: &[MachineId],
    current: &Assignment,
    rec: &mut Recorder,
    sub_iters: u64,
    boundary_iters: u64,
    sub_tl: Option<std::time::Duration>,
) -> Result<(Assignment, u64, f64), ClusterError> {
    let inst = problem.inst;
    let loads = current.loads(inst);
    let root = PartitionSpec {
        machines: (0..inst.n_machines()).map(MachineId::from).collect(),
        shards: (0..inst.n_shards()).map(ShardId::from).collect(),
        vacancy_quota: inst.k_return,
    };
    let mut leaves: Vec<PartitionSpec> = Vec::new();
    let mut internal: Vec<Vec<PartitionSpec>> = vec![Vec::new(); depth - 1];
    split_rec(
        inst,
        current.placement(),
        &loads,
        drained,
        root,
        0,
        depth,
        k_eff,
        &mut leaves,
        &mut internal,
    );

    if rec.is_active() {
        rec.span_open(
            "sra",
            "round",
            vec![
                ("round", round.into()),
                ("depth", depth.into()),
                ("leaves", leaves.len().into()),
            ],
        );
    }

    let mut iterations = 0u64;

    // Stage 1: solve every leaf in one flat cooperative round (no nested
    // parallelism — the tree only shapes *which* sub-instances exist).
    let subs: Vec<SubCtx> = leaves
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.shards.is_empty())
        .map(|(i, l)| {
            build_sub(
                inst,
                current,
                l,
                i,
                |m| problem.is_drained(m),
                format!("{}#r{round}d{depth}p{i}", inst.label),
            )
        })
        .collect();
    let sub_problems: Vec<SraProblem<'_>> = subs
        .iter()
        .map(|sc| {
            let mut sp = SraProblem::new(&sc.inst, cfg.objective)
                .with_drain(&sc.drain)
                .without_plan_checks();
            sp.smoothing = problem.smoothing;
            sp
        })
        .collect();
    let jobs: Vec<RoundJob<InPlaceModel<'_, SraProblem<'_>>>> = sub_problems
        .iter()
        .zip(&subs)
        .map(|(sp, sc)| {
            Ok(RoundJob {
                model: InPlaceModel::new(
                    sp,
                    Assignment::from_placement(&sc.inst, sc.start.clone())?,
                    default_destroys_in_place(cfg.destroy_cap),
                    default_repairs_in_place(),
                ),
                seed: round_seed(seed, round, sc.part_idx),
            })
        })
        .collect::<Result<_, ClusterError>>()?;
    let engine_cfg = LnsConfig {
        max_iters: sub_iters,
        time_limit: sub_tl,
        intensity: cfg.intensity,
        ..Default::default()
    };
    let outcomes = cooperative_round(jobs, engine_cfg, || cfg.acceptance.build(sub_iters));

    let mut merged = current.placement().to_vec();
    for (sc, out) in subs.iter().zip(&outcomes) {
        let part = &leaves[sc.part_idx];
        for (j, &s) in part.shards.iter().enumerate() {
            merged[s.idx()] = part.machines[out.best.placement()[j].idx()];
        }
        iterations += out.iterations;
    }
    if rec.is_active() {
        for (sc, out) in subs.iter().zip(&outcomes) {
            rec.event(
                "lns",
                "partition",
                vec![
                    ("round", round.into()),
                    ("partition", sc.part_idx.into()),
                    ("machines", leaves[sc.part_idx].machines.len().into()),
                    ("shards", leaves[sc.part_idx].shards.len().into()),
                    ("seed", round_seed(seed, round, sc.part_idx).into()),
                    ("objective", out.best_objective.into()),
                    ("iterations", out.iterations.into()),
                ],
            );
        }
    }
    let mut next_job = leaves.len();

    // Stage 2: bottom-up repairs across each internal level. Nodes of one
    // level are machine-disjoint, so their repairs run in one cooperative
    // round and splice conflict-free, exactly like leaf solves. Each node
    // keeps its conserved vacancy quota, so the level-merged placement
    // stays globally feasible.
    for lvl in (0..internal.len()).rev() {
        let nodes = &internal[lvl];
        if nodes.is_empty() {
            continue;
        }
        let cur = Assignment::from_placement(inst, merged.clone())?;
        let base = next_job;
        next_job += nodes.len();
        let subs: Vec<SubCtx> = nodes
            .iter()
            .enumerate()
            .filter(|(_, nd)| !nd.shards.is_empty())
            .map(|(i, nd)| {
                build_sub(
                    inst,
                    &cur,
                    nd,
                    base + i,
                    |m| problem.is_drained(m),
                    format!("{}#r{round}l{lvl}n{i}", inst.label),
                )
            })
            .collect();
        let sub_problems: Vec<SraProblem<'_>> = subs
            .iter()
            .map(|sc| {
                let mut sp = SraProblem::new(&sc.inst, cfg.objective)
                    .with_drain(&sc.drain)
                    .without_plan_checks();
                sp.smoothing = problem.smoothing;
                sp
            })
            .collect();
        let jobs: Vec<RoundJob<InPlaceModel<'_, SraProblem<'_>>>> = sub_problems
            .iter()
            .zip(&subs)
            .map(|(sp, sc)| {
                Ok(RoundJob {
                    model: InPlaceModel::new(
                        sp,
                        Assignment::from_placement(&sc.inst, sc.start.clone())?,
                        default_destroys_in_place(cfg.destroy_cap),
                        default_repairs_in_place(),
                    ),
                    seed: round_seed(seed, round, sc.part_idx),
                })
            })
            .collect::<Result<_, ClusterError>>()?;
        let engine_cfg = LnsConfig {
            max_iters: boundary_iters,
            time_limit: sub_tl,
            intensity: cfg.intensity,
            ..Default::default()
        };
        let outcomes = cooperative_round(jobs, engine_cfg, || cfg.acceptance.build(boundary_iters));
        for (sc, out) in subs.iter().zip(&outcomes) {
            let nd = &nodes[sc.part_idx - base];
            for (j, &s) in nd.shards.iter().enumerate() {
                merged[s.idx()] = nd.machines[out.best.placement()[j].idx()];
            }
            iterations += out.iterations;
        }
    }

    // Stage 3: the root's repair — a global serial boundary pass with
    // cross-node moves, judged against the true initial placement with
    // the usual plan-on-best gating.
    let merged = Assignment::from_placement(inst, merged)?;
    let boundary_cfg = LnsConfig {
        max_iters: boundary_iters,
        time_limit: sub_tl,
        intensity: cfg.intensity,
        ..Default::default()
    };
    let engine = Engine::in_place(
        problem,
        merged,
        default_destroys_in_place(cfg.destroy_cap),
        default_repairs_in_place(),
        cfg.acceptance.build(boundary_iters),
        boundary_cfg,
    );
    let out = engine.run_recorded(round_seed(seed, round, next_job), rec);
    iterations += out.iterations;
    let next = out.best;
    let val = LnsProblem::objective(problem, &next);
    if rec.is_active() {
        rec.span_close("sra", "round", vec![("objective", val.into())]);
    }
    Ok((next, iterations, val))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sra::{solve, solve_traced, solve_with_drain, AcceptanceKind};
    use rex_cluster::{InstanceBuilder, Objective, ObjectiveKind};

    /// A fleet big enough to split: `hot` heavily loaded machines, `cool`
    /// lightly loaded ones, a tail of vacancies, one exchange machine.
    fn fleet(hot: usize, cool: usize, vacant: usize, seed: u64) -> Instance {
        let mut b = InstanceBuilder::new(1).alpha(0.05).label("decomp");
        let mut rng = seed;
        let mut next = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut ms = Vec::new();
        for _ in 0..(hot + cool + vacant) {
            ms.push(b.machine(&[100.0]));
        }
        let _x = b.exchange_machine(&[100.0]);
        for &m in ms.iter().take(hot) {
            for _ in 0..6 {
                b.shard(&[10.0 + 4.0 * next()], 1.0, m);
            }
        }
        for i in 0..cool {
            b.shard(&[5.0 + 5.0 * next()], 1.0, ms[hot + i]);
        }
        b.build().unwrap()
    }

    fn cfg(partitions: usize) -> SraConfig {
        SraConfig {
            iters: 2_000,
            partitions,
            objective: Objective::pure(ObjectiveKind::PeakLoad),
            acceptance: AcceptanceKind::SimulatedAnnealing,
            ..Default::default()
        }
    }

    #[test]
    fn decomposed_solve_improves_balance() {
        let inst = fleet(4, 8, 4, 7);
        let res = solve(&inst, &cfg(4)).unwrap();
        assert!(
            res.final_report.peak < res.initial_report.peak,
            "final {} vs initial {}",
            res.final_report.peak,
            res.initial_report.peak
        );
        res.assignment.check_target(&inst).unwrap();
        assert_eq!(res.returned_machines.len(), inst.k_return);
    }

    #[test]
    fn decomposed_solve_is_deterministic() {
        let inst = fleet(4, 8, 4, 3);
        let a = solve(&inst, &cfg(4)).unwrap();
        let b = solve(&inst, &cfg(4)).unwrap();
        assert_eq!(a.objective_value, b.objective_value);
        assert_eq!(a.assignment.placement(), b.assignment.placement());
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn decomposed_never_worse_than_initial() {
        for seed in 0..3 {
            let inst = fleet(3, 6, 3, seed);
            let c = SraConfig {
                seed,
                iters: 600,
                ..cfg(3)
            };
            let res = solve(&inst, &c).unwrap();
            assert!(res.final_report.peak <= res.initial_report.peak + 1e-9);
        }
    }

    #[test]
    fn decomposed_matches_monolithic_quality_on_small_fleet() {
        let inst = fleet(4, 8, 4, 11);
        let mono = solve(&inst, &cfg(0)).unwrap();
        let deco = solve(&inst, &cfg(4)).unwrap();
        assert!(
            deco.final_report.peak <= mono.final_report.peak * 1.01 + 1e-9,
            "decomposed {} vs monolithic {}",
            deco.final_report.peak,
            mono.final_report.peak
        );
    }

    #[test]
    fn decomposed_respects_drain() {
        let inst = fleet(4, 8, 4, 5);
        let drain = [MachineId(0)];
        let res = solve_with_drain(&inst, &cfg(4), &drain).unwrap();
        assert!(res.assignment.is_vacant(MachineId(0)));
        assert!(!res.returned_machines.contains(&MachineId(0)));
        res.assignment.check_target(&inst).unwrap();
    }

    #[test]
    fn partitions_clamp_to_tiny_fleets() {
        // 3 machines: k_eff = 1, a single partition covering everything.
        let mut b = InstanceBuilder::new(1).label("tiny");
        let m0 = b.machine(&[10.0]);
        let _m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        for _ in 0..6 {
            b.shard(&[1.0], 1.0, m0);
        }
        let inst = b.build().unwrap();
        let res = solve(&inst, &cfg(8)).unwrap();
        assert!(res.final_report.peak <= res.initial_report.peak + 1e-9);
    }

    #[test]
    fn hierarchical_solve_improves_and_returns_quota() {
        let inst = fleet(6, 18, 8, 13);
        let c = SraConfig { depth: 2, ..cfg(2) };
        let res = solve(&inst, &c).unwrap();
        assert!(
            res.final_report.peak < res.initial_report.peak,
            "final {} vs initial {}",
            res.final_report.peak,
            res.initial_report.peak
        );
        res.assignment.check_target(&inst).unwrap();
        assert_eq!(res.returned_machines.len(), inst.k_return);
    }

    #[test]
    fn hierarchical_solve_is_deterministic() {
        let inst = fleet(6, 18, 8, 17);
        let c = SraConfig { depth: 3, ..cfg(2) };
        let a = solve(&inst, &c).unwrap();
        let b = solve(&inst, &c).unwrap();
        assert_eq!(a.objective_value, b.objective_value);
        assert_eq!(a.assignment.placement(), b.assignment.placement());
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn hierarchical_matches_flat_quality() {
        let inst = fleet(6, 18, 8, 19);
        let flat = solve(&inst, &cfg(4)).unwrap();
        let hier = solve(&inst, &SraConfig { depth: 2, ..cfg(2) }).unwrap();
        assert!(
            hier.final_report.peak <= flat.final_report.peak * 1.01 + 1e-9,
            "hierarchical {} vs flat {}",
            hier.final_report.peak,
            flat.final_report.peak
        );
    }

    #[test]
    fn hierarchical_respects_drain() {
        let inst = fleet(6, 18, 8, 5);
        let drain = [MachineId(0)];
        let c = SraConfig { depth: 2, ..cfg(2) };
        let res = solve_with_drain(&inst, &c, &drain).unwrap();
        assert!(res.assignment.is_vacant(MachineId(0)));
        assert!(!res.returned_machines.contains(&MachineId(0)));
        res.assignment.check_target(&inst).unwrap();
    }

    #[test]
    fn hierarchical_depth_one_is_the_flat_path() {
        // depth = 1 must be byte-identical to the pre-hierarchy flat
        // rounds: same seeds, same job numbering, same placement.
        let inst = fleet(4, 8, 4, 3);
        let flat = solve(&inst, &cfg(4)).unwrap();
        let one = solve(&inst, &SraConfig { depth: 1, ..cfg(4) }).unwrap();
        assert_eq!(flat.assignment.placement(), one.assignment.placement());
        assert_eq!(flat.iterations, one.iterations);
    }

    #[test]
    fn traced_hierarchical_matches_untraced_and_balances_spans() {
        let inst = fleet(6, 18, 8, 9);
        let c = SraConfig { depth: 2, ..cfg(2) };
        let plain = solve(&inst, &c).unwrap();
        let mut rec = Recorder::active();
        let traced = solve_traced(&inst, &c, &[], &mut rec).unwrap();
        assert_eq!(plain.objective_value, traced.objective_value);
        assert_eq!(plain.assignment.placement(), traced.assignment.placement());
        assert_eq!(plain.iterations, traced.iterations);
        assert_eq!(rec.open_spans(), 0);
    }

    #[test]
    fn traced_decomposed_matches_untraced_and_balances_spans() {
        let inst = fleet(4, 8, 4, 9);
        let plain = solve(&inst, &cfg(4)).unwrap();
        let mut rec = Recorder::active();
        let traced = solve_traced(&inst, &cfg(4), &[], &mut rec).unwrap();
        assert_eq!(plain.objective_value, traced.objective_value);
        assert_eq!(plain.assignment.placement(), traced.assignment.placement());
        assert_eq!(plain.iterations, traced.iterations);
        assert_eq!(rec.open_spans(), 0);
        assert!(rec
            .events()
            .iter()
            .any(|e| e.layer == "sra" && e.name == "decomposed"));
        let partitions = rec
            .events()
            .iter()
            .filter(|e| e.layer == "lns" && e.name == "partition")
            .count();
        assert!(partitions > 0, "partition summaries must be narrated");
    }
}
