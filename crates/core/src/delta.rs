//! Delta solves: re-optimize only a named set of *changed* shards.
//!
//! The hot-shard control plane (rex-runtime) mutates a handful of shards at
//! a time — a split produces two half-shards, a merge candidate needs
//! co-location — and wants the solver to find new homes for exactly those
//! shards without re-litigating the whole fleet. A full SRA solve would do
//! the job, but it is orders of magnitude more work than the change
//! warrants and may move unrelated shards.
//!
//! The trick is structural, not heuristic: LNS repair only ever re-inserts
//! shards the destroy phase detached. [`TargetedRemoval`] is a destroy
//! operator that always detaches exactly the changed set, so driving the
//! **same `Engine` spine** with it as the only destroy operator yields a
//! search whose every candidate differs from the incumbent only on the
//! changed shards — a genuine delta solve with the full machinery
//! (acceptance, incremental objective, vacancy quota, drains) intact.

use crate::problem::SraProblem;
use crate::repair::default_repairs_in_place;
use crate::sra::SraConfig;
use crate::state::SraState;
use rand::rngs::StdRng;
use rex_cluster::{
    plan_migration, verify_schedule, Assignment, ClusterError, Instance, MigrationPlan, ShardId,
};
use rex_lns::{DestroyInPlace, Engine, LnsConfig};
use rex_obs::Recorder;

/// A destroy operator that detaches exactly one fixed set of shards.
///
/// Used alone, it restricts the reachable neighborhood to placements that
/// differ from the start only on `shards` — the delta-solve guarantee.
#[derive(Clone, Debug)]
pub struct TargetedRemoval {
    /// The shards to re-optimize, detached on every iteration.
    pub shards: Vec<ShardId>,
}

impl DestroyInPlace<SraProblem<'_>> for TargetedRemoval {
    fn name(&self) -> &str {
        "targeted-removal"
    }

    fn destroy(
        &self,
        p: &SraProblem<'_>,
        state: &mut SraState,
        _intensity: f64,
        _rng: &mut StdRng,
    ) {
        for &s in &self.shards {
            state.detach(p, s);
        }
    }
}

/// What a delta solve produces.
#[derive(Clone, Debug)]
pub struct DeltaOutcome {
    /// The final (target) assignment; differs from `inst.initial` only on
    /// the changed shards.
    pub assignment: Assignment,
    /// A verified, transient-feasible migration schedule reaching it
    /// (empty when the best placement keeps every changed shard put).
    pub plan: MigrationPlan,
    /// Objective value of the final assignment.
    pub objective_value: f64,
    /// LNS iterations executed.
    pub iterations: u64,
}

/// Re-optimizes the placement of `changed` shards on `inst`, leaving every
/// other shard exactly where `inst.initial` has it.
///
/// Runs the serial [`Engine`] spine with [`TargetedRemoval`] as the only
/// destroy operator and the default repair portfolio, then plans and
/// independently verifies the migration schedule. (Machine drains are
/// deliberately not supported here: evacuating a drained machine would
/// move shards outside `changed`, breaking the delta guarantee — use
/// [`crate::solve_with_drain`] for decommissions.)
///
/// # Errors
///
/// Fails on an invalid instance, an out-of-range or empty `changed` set,
/// or when no transient-feasible schedule to the found placement exists.
pub fn solve_delta(
    inst: &Instance,
    cfg: &SraConfig,
    changed: &[ShardId],
    rec: &mut Recorder,
) -> Result<DeltaOutcome, ClusterError> {
    inst.validate()?;
    if changed.is_empty() || changed.iter().any(|s| s.idx() >= inst.n_shards()) {
        return Err(ClusterError::BadPlacementLength {
            expected: inst.n_shards(),
            found: changed.iter().map(|s| s.idx()).max().unwrap_or(0) + 1,
        });
    }
    if rec.is_active() {
        rec.span_open(
            "sra",
            "delta",
            vec![
                ("changed", changed.len().into()),
                ("seed", cfg.seed.into()),
                ("iters", cfg.iters.into()),
            ],
        );
    }
    let problem = SraProblem::new(inst, cfg.objective);
    let initial = Assignment::from_initial(inst);
    let destroys: Vec<Box<dyn DestroyInPlace<SraProblem<'_>>>> = vec![Box::new(TargetedRemoval {
        shards: changed.to_vec(),
    })];
    let lns_cfg = LnsConfig {
        max_iters: cfg.iters,
        time_limit: cfg.time_limit,
        intensity: cfg.intensity,
        ..Default::default()
    };
    let engine = Engine::in_place(
        &problem,
        initial,
        destroys,
        default_repairs_in_place(),
        cfg.acceptance.build(cfg.iters),
        lns_cfg,
    );
    let out = engine.run_recorded(cfg.seed, rec);
    let best = out.best;
    debug_assert!(
        best.placement()
            .iter()
            .zip(&inst.initial)
            .enumerate()
            .all(|(i, (a, b))| a == b || changed.contains(&ShardId::from(i))),
        "delta solve moved a shard outside the changed set"
    );
    let plan = plan_migration(inst, &inst.initial, best.placement(), &cfg.planner)?;
    verify_schedule(inst, &inst.initial, best.placement(), &plan)?;
    best.check_target(inst)?;
    let objective_value = cfg.objective.value(inst, &best, &inst.initial);
    if rec.is_active() {
        rec.span_close(
            "sra",
            "delta",
            vec![
                ("objective", objective_value.into()),
                ("iterations", out.iterations.into()),
                ("plan_batches", plan.batches.len().into()),
            ],
        );
    }
    Ok(DeltaOutcome {
        assignment: best,
        plan,
        objective_value,
        iterations: out.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::{InstanceBuilder, MachineId, Objective, ObjectiveKind};

    /// m0 hot (8 shards), m1 cool (1 shard), m2 exchange.
    fn imbalanced() -> Instance {
        let mut b = InstanceBuilder::new(1).alpha(0.1).label("delta");
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        for _ in 0..8 {
            b.shard(&[1.0], 1.0, m0);
        }
        b.shard(&[1.0], 1.0, m1);
        b.build().unwrap()
    }

    fn cfg() -> SraConfig {
        SraConfig {
            iters: 400,
            objective: Objective::pure(ObjectiveKind::PeakLoad),
            ..Default::default()
        }
    }

    #[test]
    fn delta_moves_only_changed_shards() {
        let inst = imbalanced();
        let changed = [ShardId(0), ShardId(1), ShardId(2)];
        let out = solve_delta(&inst, &cfg(), &changed, &mut Recorder::noop()).unwrap();
        for (i, (&got, &start)) in out
            .assignment
            .placement()
            .iter()
            .zip(&inst.initial)
            .enumerate()
        {
            assert!(
                got == start || changed.contains(&ShardId::from(i)),
                "shard {i} moved from {start} to {got} outside the delta set"
            );
        }
        verify_schedule(&inst, &inst.initial, out.assignment.placement(), &out.plan).unwrap();
    }

    #[test]
    fn delta_improves_peak_when_it_can() {
        let inst = imbalanced();
        // Three of the hot machine's shards are free to move: peak 0.8
        // can drop to 0.5 without touching the other shards.
        let out = solve_delta(
            &inst,
            &cfg(),
            &[ShardId(0), ShardId(1), ShardId(2)],
            &mut Recorder::noop(),
        )
        .unwrap();
        let m0_load: f64 = out
            .assignment
            .placement()
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == MachineId(0))
            .map(|(s, _)| inst.demand(ShardId::from(s))[0])
            .sum();
        assert!(m0_load < 8.0, "delta solve should shed load off m0");
    }

    #[test]
    fn delta_is_deterministic() {
        let inst = imbalanced();
        let changed = [ShardId(0), ShardId(3)];
        let a = solve_delta(&inst, &cfg(), &changed, &mut Recorder::noop()).unwrap();
        let b = solve_delta(&inst, &cfg(), &changed, &mut Recorder::noop()).unwrap();
        assert_eq!(a.assignment.placement(), b.assignment.placement());
        assert_eq!(a.objective_value, b.objective_value);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn delta_rejects_bad_changed_sets() {
        let inst = imbalanced();
        assert!(solve_delta(&inst, &cfg(), &[], &mut Recorder::noop()).is_err());
        assert!(solve_delta(&inst, &cfg(), &[ShardId(99)], &mut Recorder::noop()).is_err());
    }

    #[test]
    fn traced_delta_matches_plain_and_balances_spans() {
        let inst = imbalanced();
        let changed = [ShardId(0), ShardId(1)];
        let plain = solve_delta(&inst, &cfg(), &changed, &mut Recorder::noop()).unwrap();
        let mut rec = Recorder::active();
        let traced = solve_delta(&inst, &cfg(), &changed, &mut rec).unwrap();
        assert_eq!(plain.assignment.placement(), traced.assignment.placement());
        assert_eq!(rec.open_spans(), 0);
        assert!(rec
            .events()
            .iter()
            .any(|e| e.layer == "sra" && e.name == "delta"));
    }
}
