//! Layered solver configuration: one validated path from defaults to a
//! runnable [`SraConfig`].
//!
//! Every entry point that launches a solve — the `rex` CLI, the runtime
//! controller's rebalance/evacuation planning, the benches — builds its
//! configuration through [`SolveOptions`]:
//!
//! 1. start from the defaults ([`SolveOptions::new`]) or an existing
//!    config ([`SolveOptions::from_config`]),
//! 2. layer overrides on top (controller policy knobs, CLI flags) with the
//!    chained setters,
//! 3. validate once at the boundary with [`SolveOptions::build`] (or
//!    [`SolveOptions::build_for`] when an instance is at hand to check
//!    fleet-dependent fields against).
//!
//! Out-of-range values are rejected with a typed [`ConfigError`] instead of
//! being silently clamped or panicking deep inside the solver.

use crate::sra::{AcceptanceKind, SraConfig};
use rex_cluster::Instance;
use std::time::Duration;

/// A solver configuration value rejected at the [`SolveOptions`] boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// `iters` must be at least 1 — a zero-iteration search cannot run.
    ZeroIterations,
    /// `workers` must be at least 1 (the portfolio needs a worker).
    ZeroWorkers,
    /// The destroy intensity range must satisfy `0 < lo <= hi <= 1`.
    BadIntensity {
        /// Lower bound as given.
        lo: f64,
        /// Upper bound as given.
        hi: f64,
    },
    /// `destroy_cap` must be at least 1 — destroying zero shards per
    /// iteration makes every repair a no-op.
    ZeroDestroyCap,
    /// The migration-cost weight `lambda` must be finite and non-negative.
    NegativeLambda {
        /// The offending weight.
        lambda: f64,
    },
    /// Too many partitions for the fleet: decomposition needs at least two
    /// machines per partition, so `partitions` must stay below the machine
    /// count (a fleet-sized request would hand every partition a single
    /// machine and a zero vacancy quota).
    TooManyPartitions {
        /// Partitions requested.
        partitions: usize,
        /// Machines available.
        machines: usize,
    },
    /// The hierarchical decomposition depth must be in `1..=8`. Zero has
    /// no meaning (there is always at least the root level), and depths
    /// beyond 8 only shrink leaves below useful size: even at the minimal
    /// branching factor of 2 a depth-8 tree already needs a 512-machine
    /// fleet for two machines per leaf.
    BadDepth {
        /// Depth requested.
        depth: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConfigError::ZeroIterations => write!(f, "iters must be at least 1"),
            ConfigError::ZeroWorkers => write!(f, "workers must be at least 1"),
            ConfigError::BadIntensity { lo, hi } => {
                write!(
                    f,
                    "intensity range ({lo}, {hi}) must satisfy 0 < lo <= hi <= 1"
                )
            }
            ConfigError::ZeroDestroyCap => write!(f, "destroy-cap must be at least 1"),
            ConfigError::NegativeLambda { lambda } => {
                write!(f, "lambda must be finite and non-negative, got {lambda}")
            }
            ConfigError::TooManyPartitions {
                partitions,
                machines,
            } => write!(
                f,
                "{partitions} partitions requested but the fleet has only {machines} \
                 machines (every partition needs at least two)"
            ),
            ConfigError::BadDepth { depth } => {
                write!(f, "depth must be between 1 and 8, got {depth}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for a validated [`SraConfig`]. See the module docs for the
/// layering discipline.
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    cfg: SraConfig,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl SolveOptions {
    /// Starts from [`SraConfig::default`].
    pub fn new() -> Self {
        Self {
            cfg: SraConfig::default(),
        }
    }

    /// Starts from an existing configuration (e.g. a preset the caller
    /// already carries) so further layers only override what they own.
    pub fn from_config(cfg: SraConfig) -> Self {
        Self { cfg }
    }

    /// LNS iteration budget (per worker).
    pub fn iters(mut self, iters: u64) -> Self {
        self.cfg.iters = iters;
        self
    }

    /// Optional wall-clock budget (per worker).
    pub fn time_limit(mut self, limit: Option<Duration>) -> Self {
        self.cfg.time_limit = limit;
        self
    }

    /// Migration-cost weight of the objective.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.cfg.objective.lambda = lambda;
        self
    }

    /// Acceptance criterion.
    pub fn acceptance(mut self, acceptance: AcceptanceKind) -> Self {
        self.cfg.acceptance = acceptance;
        self
    }

    /// Destroy intensity range (fraction of shards).
    pub fn intensity(mut self, lo: f64, hi: f64) -> Self {
        self.cfg.intensity = (lo, hi);
        self
    }

    /// Maximum shards detached per iteration.
    pub fn destroy_cap(mut self, cap: usize) -> Self {
        self.cfg.destroy_cap = cap;
        self
    }

    /// Parallel portfolio width (`1` = serial engine).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Cooperative decomposition width (`0`/`1` = monolithic).
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.cfg.partitions = partitions;
        self
    }

    /// Hierarchical decomposition depth (`1` = flat rounds; only
    /// meaningful with `partitions > 1`).
    pub fn depth(mut self, depth: usize) -> Self {
        self.cfg.depth = depth;
        self
    }

    /// Deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Record the best-objective trajectory (serial runs only).
    pub fn log_trajectory(mut self, log: bool) -> Self {
        self.cfg.log_trajectory = log;
        self
    }

    /// Validates every instance-independent field and returns the runnable
    /// configuration.
    pub fn build(self) -> Result<SraConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.iters == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        if cfg.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        let (lo, hi) = cfg.intensity;
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi && hi <= 1.0) {
            return Err(ConfigError::BadIntensity { lo, hi });
        }
        if cfg.destroy_cap == 0 {
            return Err(ConfigError::ZeroDestroyCap);
        }
        let lambda = cfg.objective.lambda;
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(ConfigError::NegativeLambda { lambda });
        }
        if cfg.depth == 0 || cfg.depth > 8 {
            return Err(ConfigError::BadDepth { depth: cfg.depth });
        }
        Ok(cfg)
    }

    /// [`SolveOptions::build`] plus the fleet-dependent checks: a
    /// decomposed solve (`partitions > 1`) needs at least two machines per
    /// partition, so `partitions >= n_machines` is a configuration error,
    /// not something to clamp silently — a fleet-sized width would hand
    /// every partition one machine and a zero vacancy quota, which only
    /// blows up later inside `partition_fleet`. (The decomposed solver
    /// still tightens valid widths to at most half the machine count.)
    pub fn build_for(self, inst: &Instance) -> Result<SraConfig, ConfigError> {
        let cfg = self.build()?;
        if cfg.partitions > 1 && cfg.partitions >= inst.n_machines() {
            return Err(ConfigError::TooManyPartitions {
                partitions: cfg.partitions,
                machines: inst.n_machines(),
            });
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::InstanceBuilder;

    #[test]
    fn defaults_validate_cleanly() {
        let cfg = SolveOptions::new().build().unwrap();
        assert_eq!(cfg.iters, SraConfig::default().iters);
    }

    #[test]
    fn layering_keeps_untouched_fields() {
        let base = SraConfig {
            destroy_cap: 17,
            ..Default::default()
        };
        let cfg = SolveOptions::from_config(base).iters(123).build().unwrap();
        assert_eq!(cfg.iters, 123);
        assert_eq!(cfg.destroy_cap, 17);
    }

    #[test]
    fn zero_iterations_rejected() {
        assert_eq!(
            SolveOptions::new().iters(0).build().unwrap_err(),
            ConfigError::ZeroIterations
        );
    }

    #[test]
    fn zero_workers_rejected() {
        assert_eq!(
            SolveOptions::new().workers(0).build().unwrap_err(),
            ConfigError::ZeroWorkers
        );
    }

    #[test]
    fn bad_intensity_rejected() {
        for (lo, hi) in [
            (0.0, 0.5),
            (-0.1, 0.5),
            (0.5, 0.2),
            (0.1, 1.5),
            (f64::NAN, 0.5),
            (0.1, f64::NAN),
        ] {
            let err = SolveOptions::new().intensity(lo, hi).build().unwrap_err();
            assert!(
                matches!(err, ConfigError::BadIntensity { .. }),
                "({lo}, {hi}) -> {err:?}"
            );
        }
        // The boundaries themselves are legal.
        SolveOptions::new().intensity(0.001, 1.0).build().unwrap();
    }

    #[test]
    fn zero_destroy_cap_rejected() {
        assert_eq!(
            SolveOptions::new().destroy_cap(0).build().unwrap_err(),
            ConfigError::ZeroDestroyCap
        );
    }

    #[test]
    fn negative_lambda_rejected() {
        for lambda in [-0.25, f64::NAN, f64::NEG_INFINITY, f64::INFINITY] {
            let err = SolveOptions::new().lambda(lambda).build().unwrap_err();
            assert!(
                matches!(err, ConfigError::NegativeLambda { .. }),
                "{lambda} -> {err:?}"
            );
        }
        SolveOptions::new().lambda(0.0).build().unwrap();
    }

    #[test]
    fn too_many_partitions_rejected_against_fleet() {
        let mut b = InstanceBuilder::new(1).label("opt");
        let m0 = b.machine(&[10.0]);
        let _m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        b.shard(&[1.0], 1.0, m0);
        let inst = b.build().unwrap(); // 3 machines
        assert_eq!(
            SolveOptions::new()
                .partitions(4)
                .build_for(&inst)
                .unwrap_err(),
            ConfigError::TooManyPartitions {
                partitions: 4,
                machines: 3
            }
        );
        // A fleet-sized width (one machine, zero vacancy quota per
        // partition) is rejected at the boundary too.
        assert_eq!(
            SolveOptions::new()
                .partitions(3)
                .build_for(&inst)
                .unwrap_err(),
            ConfigError::TooManyPartitions {
                partitions: 3,
                machines: 3
            }
        );
        // fleet−1 stays below the machine count and is accepted (the
        // decomposed solver clamps widths further), and `partitions <= 1`
        // means "monolithic" — always accepted.
        SolveOptions::new().partitions(2).build_for(&inst).unwrap();
        SolveOptions::new().partitions(1).build_for(&inst).unwrap();
        SolveOptions::new().partitions(0).build_for(&inst).unwrap();
    }

    #[test]
    fn partition_edges_on_a_wider_fleet() {
        // 6 machines: the fleet-sized width is rejected at the boundary;
        // fleet−1 and below pass (the decomposed solver clamps further,
        // to at most half the machine count).
        let mut b = InstanceBuilder::new(1).label("opt6");
        let m0 = b.machine(&[10.0]);
        for _ in 0..4 {
            b.machine(&[10.0]);
        }
        let _x = b.exchange_machine(&[10.0]);
        b.shard(&[1.0], 1.0, m0);
        let inst = b.build().unwrap();
        assert!(matches!(
            SolveOptions::new().partitions(6).build_for(&inst),
            Err(ConfigError::TooManyPartitions {
                partitions: 6,
                machines: 6
            })
        ));
        assert!(SolveOptions::new().partitions(5).build_for(&inst).is_ok());
        assert!(SolveOptions::new().partitions(3).build_for(&inst).is_ok());
        assert!(SolveOptions::new().partitions(1).build_for(&inst).is_ok());
    }

    #[test]
    fn bad_depth_rejected() {
        for depth in [0usize, 9, 100] {
            assert_eq!(
                SolveOptions::new().depth(depth).build().unwrap_err(),
                ConfigError::BadDepth { depth }
            );
        }
        for depth in 1..=8 {
            SolveOptions::new().depth(depth).build().unwrap();
        }
    }

    #[test]
    fn errors_render_human_readably() {
        let e = ConfigError::TooManyPartitions {
            partitions: 9,
            machines: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains('9') && msg.contains('4'), "{msg}");
        assert!(ConfigError::ZeroIterations.to_string().contains("iters"));
        assert!(ConfigError::BadIntensity { lo: 0.0, hi: 2.0 }
            .to_string()
            .contains("intensity"));
    }
}
