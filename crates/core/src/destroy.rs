//! Destroy operators: choose which shards to detach.
//!
//! Each operator detaches between one and `cap` shards, scaling with the
//! engine-supplied intensity. The cap keeps destroy size bounded on large
//! instances — repairing hundreds of shards per iteration would dominate
//! the iteration budget without improving search quality.
//!
//! All operators implement the in-place edit protocol: they edit one
//! [`SraState`] (recording every detach in its undo log) and draw all
//! scratch space from the state's persistent buffers, so the steady-state
//! hot loop allocates nothing.

use crate::problem::SraProblem;
use crate::state::SraState;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;
use rex_cluster::{MachineId, ShardId};
use rex_lns::DestroyInPlace;

/// Number of shards to remove given intensity, instance size, and cap.
///
/// The lower bound of three (when the instance has that many shards)
/// matters: under the vacancy quota the solution space is disconnected for
/// single-shard moves — a pairwise swap through an exchange machine needs
/// both parties detached in the same iteration, or every intermediate
/// state violates either capacity or the vacancy count and is rejected.
fn removal_count(n_shards: usize, intensity: f64, cap: usize) -> usize {
    let floor = 3.min(n_shards);
    (((n_shards as f64) * intensity).ceil() as usize).clamp(floor, cap.max(floor).min(n_shards))
}

/// Detaches a uniformly random subset of shards.
#[derive(Clone, Copy, Debug)]
pub struct RandomRemoval {
    /// Maximum shards detached per invocation.
    pub cap: usize,
}

impl DestroyInPlace<SraProblem<'_>> for RandomRemoval {
    fn name(&self) -> &str {
        "random-removal"
    }

    fn destroy(&self, p: &SraProblem<'_>, state: &mut SraState, intensity: f64, rng: &mut StdRng) {
        let n = p.inst.n_shards();
        let k = removal_count(n, intensity, self.cap);
        // Partial Fisher–Yates over the persistent index pool: the first
        // `k` entries become a uniform k-subset.
        let mut pool = std::mem::take(&mut state.pool);
        pool.clear();
        pool.extend(0..n as u32);
        for i in 0..k {
            let j = rng.random_range(i..n);
            pool.swap(i, j);
            state.detach(p, ShardId(pool[i]));
        }
        state.pool = pool;
    }
}

/// Detaches shards from the hottest machines: repeatedly picks one of the
/// top-3 most-loaded machines and detaches its largest shard. This is the
/// operator that directly attacks the peak-load objective.
#[derive(Clone, Copy, Debug)]
pub struct WorstMachineRemoval {
    /// Maximum shards detached per invocation.
    pub cap: usize,
}

impl DestroyInPlace<SraProblem<'_>> for WorstMachineRemoval {
    fn name(&self) -> &str {
        "worst-machine"
    }

    fn destroy(&self, p: &SraProblem<'_>, state: &mut SraState, intensity: f64, rng: &mut StdRng) {
        let inst = p.inst;
        let k = removal_count(inst.n_shards(), intensity, self.cap);
        let mut hot = std::mem::take(&mut state.scored);
        for _ in 0..k {
            // Rank occupied machines by the *cached* load (kept current by
            // `detach`); sample among the top 3 so repeated invocations
            // explore different evacuation patterns.
            hot.clear();
            hot.extend(
                (0..inst.n_machines())
                    .filter(|&i| !state.asg.shards_on(MachineId::from(i)).is_empty())
                    .map(|i| (state.loads[i], i as u32)),
            );
            if hot.is_empty() {
                break;
            }
            hot.sort_unstable_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.cmp(&b.1))
            });
            let pick = rng.random_range(0..hot.len().min(3));
            let machine = MachineId::from(hot[pick].1 as usize);
            let s = *state
                .asg
                .shards_on(machine)
                .iter()
                .max_by(|a, b| {
                    inst.demand(**a)
                        .norm()
                        .partial_cmp(&inst.demand(**b).norm())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("machine is occupied");
            state.detach(p, s);
        }
        state.scored = hot;
    }
}

/// Shaw-style related removal: detaches shards whose demand vectors are
/// similar to a random seed shard's. Similar shards are interchangeable, so
/// re-inserting a related group gives the repair real room to rearrange.
#[derive(Clone, Copy, Debug)]
pub struct RelatedRemoval {
    /// Maximum shards detached per invocation.
    pub cap: usize,
}

impl DestroyInPlace<SraProblem<'_>> for RelatedRemoval {
    fn name(&self) -> &str {
        "related-removal"
    }

    fn destroy(&self, p: &SraProblem<'_>, state: &mut SraState, intensity: f64, rng: &mut StdRng) {
        let inst = p.inst;
        let n = inst.n_shards();
        let k = removal_count(n, intensity, self.cap);
        let seed = ShardId::from(rng.random_range(0..n));
        let seed_demand = *inst.demand(seed);

        // Rank all shards by distance to the seed, then detach a random k of
        // the nearest 2k (the randomization prevents the operator from
        // detaching the identical set every time).
        let mut ranked = std::mem::take(&mut state.scored);
        ranked.clear();
        ranked.extend((0..n as u32).map(|i| (seed_demand.distance(inst.demand(ShardId(i))), i)));
        let pool = (2 * k).min(n);
        ranked.select_nth_unstable_by(pool - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        ranked[..pool].shuffle(rng);
        for &(_, raw) in ranked.iter().take(k) {
            state.detach(p, ShardId(raw));
        }
        state.scored = ranked;
    }
}

/// Evacuates one occupied machine entirely.
///
/// This is the **resource-exchange move**: with the machine empty, the
/// repair pass may leave it vacant, making it eligible for return in place
/// of a borrowed exchange machine — the membership exchange the paper's
/// scheme allows. Machines with fewer shards are preferred (cheaper to
/// evacuate); exchange machines can be evacuated too, which undoes an
/// earlier occupation.
#[derive(Clone, Copy, Debug)]
pub struct MachineExchangeRemoval {
    /// Upper bound on the number of shards the chosen machine may host.
    pub cap: usize,
}

impl DestroyInPlace<SraProblem<'_>> for MachineExchangeRemoval {
    fn name(&self) -> &str {
        "machine-exchange"
    }

    fn destroy(&self, p: &SraProblem<'_>, state: &mut SraState, _intensity: f64, rng: &mut StdRng) {
        let inst = p.inst;
        // Candidates: occupied machines with at most `cap` shards.
        let mut candidates = std::mem::take(&mut state.pool);
        candidates.clear();
        candidates.extend((0..inst.n_machines() as u32).filter(|&i| {
            let c = state.asg.shards_on(MachineId::from(i as usize)).len();
            c > 0 && c <= self.cap.max(1)
        }));
        if candidates.is_empty() {
            // Degenerate: fall back to detaching a single random shard so
            // the iteration still proposes something.
            let s = ShardId::from(rng.random_range(0..inst.n_shards()));
            state.detach(p, s);
        } else {
            candidates.shuffle(rng);
            let machine = MachineId::from(candidates[0] as usize);
            candidates.clear();
            candidates.extend(state.asg.shards_on(machine).iter().map(|s| s.idx() as u32));
            for &raw in &candidates {
                state.detach(p, ShardId(raw));
            }
        }
        state.pool = candidates;
    }
}

/// The full default destroy portfolio used by SRA.
pub fn default_destroys_in_place<'a>(cap: usize) -> Vec<Box<dyn DestroyInPlace<SraProblem<'a>>>> {
    vec![
        Box::new(RandomRemoval { cap }),
        Box::new(WorstMachineRemoval { cap }),
        Box::new(RelatedRemoval { cap }),
        Box::new(MachineExchangeRemoval { cap }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rex_cluster::{Assignment, Instance, InstanceBuilder, Objective};
    use rex_lns::LnsProblemInPlace;

    fn inst() -> Instance {
        let mut b = InstanceBuilder::new(2).label("d");
        let m0 = b.machine(&[10.0, 10.0]);
        let m1 = b.machine(&[10.0, 10.0]);
        let _x = b.exchange_machine(&[10.0, 10.0]);
        b.shard(&[4.0, 1.0], 1.0, m0);
        b.shard(&[3.0, 2.0], 1.0, m0);
        b.shard(&[1.0, 1.0], 1.0, m1);
        b.shard(&[1.5, 0.5], 1.0, m1);
        b.build().unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn removal_count_bounds() {
        assert_eq!(removal_count(100, 0.1, 50), 10);
        // Floor of three: single-shard destroys cannot express swaps.
        assert_eq!(removal_count(100, 0.001, 50), 3);
        assert_eq!(removal_count(100, 0.9, 20), 20);
        assert_eq!(removal_count(5, 1.0, 100), 5);
        assert_eq!(removal_count(2, 0.1, 100), 2);
    }

    #[test]
    fn random_removal_detaches_requested_count() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::default());
        let mut state = p.make_state(Assignment::from_initial(&inst));
        DestroyInPlace::destroy(&RandomRemoval { cap: 10 }, &p, &mut state, 0.75, &mut rng());
        assert_eq!(state.removed().len(), 3);
        for &s in state.removed() {
            assert!(state.solution().is_detached(s));
        }
        state.solution().validate_consistency(&inst).unwrap();
    }

    #[test]
    fn worst_machine_targets_hot_machine() {
        let inst = inst(); // m0 load 0.7, m1 load 0.25
        let p = SraProblem::new(&inst, Objective::default());
        let mut state = p.make_state(Assignment::from_initial(&inst));
        // With only two occupied machines, top-3 sampling may pick either,
        // but over many draws the hot machine must dominate.
        let mut from_hot = 0;
        let mut r = rng();
        for _ in 0..50 {
            DestroyInPlace::destroy(&WorstMachineRemoval { cap: 1 }, &p, &mut state, 0.1, &mut r);
            // The connectivity floor (3) overrides a smaller cap.
            assert_eq!(state.removed().len(), 3);
            if inst.initial[state.removed()[0].idx()] == MachineId(0) {
                from_hot += 1;
            }
            LnsProblemInPlace::revert(&p, &mut state);
        }
        assert!(
            from_hot > 10,
            "hot machine should be targeted often, got {from_hot}"
        );
    }

    #[test]
    fn related_removal_picks_similar_shards() {
        // Two clusters of identical shards; removing ~half must stay inside
        // one cluster when the seed is in it.
        let mut b = InstanceBuilder::new(2);
        let m0 = b.machine(&[100.0, 100.0]);
        let _m1 = b.machine(&[100.0, 100.0]);
        for _ in 0..6 {
            b.shard(&[5.0, 0.0], 1.0, m0);
        }
        for _ in 0..6 {
            b.shard(&[0.0, 5.0], 1.0, m0);
        }
        let inst = b.build().unwrap();
        let p = SraProblem::new(&inst, Objective::default());
        let mut state = p.make_state(Assignment::from_initial(&inst));
        // k = 3 (floor), candidate pool = 6 nearest = exactly one cluster.
        DestroyInPlace::destroy(&RelatedRemoval { cap: 3 }, &p, &mut state, 0.1, &mut rng());
        assert_eq!(state.removed().len(), 3);
        let kinds: Vec<usize> = state.removed().iter().map(|s| s.idx() / 6).collect();
        assert!(
            kinds.windows(2).all(|w| w[0] == w[1]),
            "related removal must stay within one demand cluster: {kinds:?}"
        );
    }

    #[test]
    fn machine_exchange_empties_exactly_one_machine() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::default());
        let mut state = p.make_state(Assignment::from_initial(&inst));
        DestroyInPlace::destroy(
            &MachineExchangeRemoval { cap: 8 },
            &p,
            &mut state,
            0.5,
            &mut rng(),
        );
        // All removed shards come from the same, now-vacant machine.
        let origins: Vec<MachineId> = state
            .removed()
            .iter()
            .map(|s| inst.initial[s.idx()])
            .collect();
        assert!(origins.windows(2).all(|w| w[0] == w[1]));
        assert!(state.solution().is_vacant(origins[0]));
        state.solution().validate_consistency(&inst).unwrap();
    }

    #[test]
    fn machine_exchange_falls_back_when_no_small_machine() {
        let inst = inst(); // both occupied machines host 2 shards
        let p = SraProblem::new(&inst, Objective::default());
        let mut state = p.make_state(Assignment::from_initial(&inst));
        DestroyInPlace::destroy(
            &MachineExchangeRemoval { cap: 1 },
            &p,
            &mut state,
            0.5,
            &mut rng(),
        );
        assert_eq!(state.removed().len(), 1);
    }

    #[test]
    fn default_portfolio_has_four_operators() {
        let ops = default_destroys_in_place(32);
        let names: Vec<&str> = ops.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            vec![
                "random-removal",
                "worst-machine",
                "related-removal",
                "machine-exchange"
            ]
        );
    }

    #[test]
    fn in_place_destroys_detach_and_revert_cleanly() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::default());
        let mut state = p.make_state(Assignment::from_initial(&inst));
        let before = state.solution().placement().to_vec();
        let mut r = rng();
        for op in &default_destroys_in_place(8) {
            op.destroy(&p, &mut state, 0.5, &mut r);
            assert!(
                !state.removed().is_empty(),
                "{} detached nothing",
                op.name()
            );
            for &s in state.removed() {
                assert!(state.solution().is_detached(s));
            }
            state.solution().validate_consistency(&inst).unwrap();
            LnsProblemInPlace::revert(&p, &mut state);
            assert_eq!(state.solution().placement(), before.as_slice());
        }
    }
}
