//! Repair operators: re-insert detached shards.
//!
//! All repairs share the same hard rules, enforced through
//! [`SraProblem::insertion_score`] and the vacancy budget:
//!
//! * never overload a machine,
//! * never occupy a vacant machine when doing so would leave fewer than
//!   `k_return` vacancies (the exchange compensation would become
//!   impossible),
//! * a repair that cannot place every detached shard returns `None` and the
//!   iteration is discarded.

use crate::problem::{SraPartial, SraProblem};
use rand::rngs::StdRng;
use rand::RngExt;
use rex_cluster::{Assignment, MachineId, ShardId};
use rex_lns::Repair;

/// Shared insertion state: tracks how many vacancies may still be consumed.
struct InsertCtx {
    vacancy_budget: usize,
}

impl InsertCtx {
    fn new(p: &SraProblem<'_>, asg: &Assignment) -> Self {
        Self { vacancy_budget: p.vacancy_budget(asg) }
    }

    /// Whether machine `m` may receive a shard right now.
    fn allowed(&self, asg: &Assignment, m: MachineId) -> bool {
        !asg.is_vacant(m) || self.vacancy_budget > 0
    }

    /// Registers that a shard was placed on `m` (must be called *before*
    /// the attach mutates vacancy state).
    fn consume(&mut self, asg: &Assignment, m: MachineId) {
        if asg.is_vacant(m) {
            self.vacancy_budget -= 1;
        }
    }
}

/// Best feasible machine for `s` under the insertion score; ties broken by
/// machine id for determinism.
fn best_machine(
    p: &SraProblem<'_>,
    asg: &Assignment,
    ctx: &InsertCtx,
    s: ShardId,
) -> Option<(MachineId, f64)> {
    let mut best: Option<(MachineId, f64)> = None;
    for i in 0..p.inst.n_machines() {
        let m = MachineId::from(i);
        if !ctx.allowed(asg, m) {
            continue;
        }
        if let Some(score) = p.insertion_score(asg, s, m) {
            let better = match best {
                None => true,
                Some((_, b)) => score < b,
            };
            if better {
                best = Some((m, score));
            }
        }
    }
    best
}

/// Sorts detached shards by decreasing demand norm (hardest first).
fn sort_big_first(p: &SraProblem<'_>, removed: &mut [ShardId]) {
    removed.sort_by(|&a, &b| {
        p.inst
            .demand(b)
            .norm()
            .partial_cmp(&p.inst.demand(a).norm())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

/// Greedy best-fit: inserts shards, largest first, each on the machine with
/// the lowest insertion score.
#[derive(Clone, Copy, Debug)]
pub struct GreedyBestFit;

impl Repair<SraProblem<'_>> for GreedyBestFit {
    fn name(&self) -> &str {
        "greedy-best-fit"
    }

    fn repair(
        &self,
        p: &SraProblem<'_>,
        mut partial: SraPartial,
        _rng: &mut StdRng,
    ) -> Option<Assignment> {
        sort_big_first(p, &mut partial.removed);
        let mut ctx = InsertCtx::new(p, &partial.asg);
        for s in partial.removed {
            let (m, _) = best_machine(p, &partial.asg, &ctx, s)?;
            ctx.consume(&partial.asg, m);
            partial.asg.attach_shard(p.inst, s, m);
        }
        Some(partial.asg)
    }
}

/// Regret-2 insertion: repeatedly inserts the shard that would lose the
/// most by *not* getting its best machine (difference between its best and
/// second-best scores). Shards with a single feasible machine have infinite
/// regret and go first.
#[derive(Clone, Copy, Debug)]
pub struct Regret2Insert;

impl Repair<SraProblem<'_>> for Regret2Insert {
    fn name(&self) -> &str {
        "regret-2"
    }

    fn repair(
        &self,
        p: &SraProblem<'_>,
        mut partial: SraPartial,
        _rng: &mut StdRng,
    ) -> Option<Assignment> {
        let mut ctx = InsertCtx::new(p, &partial.asg);
        while !partial.removed.is_empty() {
            let mut pick: Option<(usize, MachineId, f64)> = None; // (idx, best machine, regret)
            for (idx, &s) in partial.removed.iter().enumerate() {
                // Best and second-best scores for this shard.
                let mut b1: Option<(MachineId, f64)> = None;
                let mut b2: Option<f64> = None;
                for i in 0..p.inst.n_machines() {
                    let m = MachineId::from(i);
                    if !ctx.allowed(&partial.asg, m) {
                        continue;
                    }
                    if let Some(score) = p.insertion_score(&partial.asg, s, m) {
                        match b1 {
                            None => b1 = Some((m, score)),
                            Some((_, s1)) if score < s1 => {
                                b2 = Some(s1);
                                b1 = Some((m, score));
                            }
                            Some(_) => match b2 {
                                None => b2 = Some(score),
                                Some(s2) if score < s2 => b2 = Some(score),
                                _ => {}
                            },
                        }
                    }
                }
                let (m, s1) = b1?; // a shard with no feasible machine fails the repair
                let regret = match b2 {
                    Some(s2) => s2 - s1,
                    None => f64::INFINITY, // only one option: most urgent
                };
                let better = match pick {
                    None => true,
                    Some((_, _, r)) => regret > r,
                };
                if better {
                    pick = Some((idx, m, regret));
                }
            }
            let (idx, m, _) = pick?;
            let s = partial.removed.swap_remove(idx);
            ctx.consume(&partial.asg, m);
            partial.asg.attach_shard(p.inst, s, m);
        }
        Some(partial.asg)
    }
}

/// Randomized greedy: like best-fit but each shard samples `sample`
/// candidate machines and takes the best of the sample. Adds the
/// diversification pure best-fit lacks, at a fraction of its cost on large
/// fleets.
#[derive(Clone, Copy, Debug)]
pub struct RandomizedGreedy {
    /// Number of machines sampled per shard.
    pub sample: usize,
}

impl Repair<SraProblem<'_>> for RandomizedGreedy {
    fn name(&self) -> &str {
        "randomized-greedy"
    }

    fn repair(
        &self,
        p: &SraProblem<'_>,
        mut partial: SraPartial,
        rng: &mut StdRng,
    ) -> Option<Assignment> {
        sort_big_first(p, &mut partial.removed);
        let mut ctx = InsertCtx::new(p, &partial.asg);
        let n = p.inst.n_machines();
        for s in partial.removed {
            let mut best: Option<(MachineId, f64)> = None;
            for _ in 0..self.sample.max(1) {
                let m = MachineId::from(rng.random_range(0..n));
                if !ctx.allowed(&partial.asg, m) {
                    continue;
                }
                if let Some(score) = p.insertion_score(&partial.asg, s, m) {
                    let better = match best {
                        None => true,
                        Some((_, b)) => score < b,
                    };
                    if better {
                        best = Some((m, score));
                    }
                }
            }
            // Fall back to the full scan when sampling found nothing — the
            // shard may genuinely have only a few feasible hosts.
            let (m, _) = match best {
                Some(x) => x,
                None => best_machine(p, &partial.asg, &ctx, s)?,
            };
            ctx.consume(&partial.asg, m);
            partial.asg.attach_shard(p.inst, s, m);
        }
        Some(partial.asg)
    }
}

/// The full default repair portfolio used by SRA.
pub fn default_repairs<'a>() -> Vec<Box<dyn Repair<SraProblem<'a>>>> {
    vec![
        Box::new(GreedyBestFit),
        Box::new(Regret2Insert),
        Box::new(RandomizedGreedy { sample: 8 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rex_cluster::{Instance, InstanceBuilder, Objective, ObjectiveKind};
    use rex_lns::LnsProblem;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn inst() -> Instance {
        let mut b = InstanceBuilder::new(1).label("r");
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        b.shard(&[6.0], 1.0, m0);
        b.shard(&[3.0], 1.0, m0);
        b.shard(&[2.0], 1.0, m1);
        b.build().unwrap()
    }

    fn detach_all(p: &SraProblem<'_>) -> SraPartial {
        let mut asg = Assignment::from_initial(p.inst);
        let removed: Vec<ShardId> = (0..p.inst.n_shards()).map(ShardId::from).collect();
        for &s in &removed {
            asg.detach_shard(p.inst, s);
        }
        SraPartial { asg, removed }
    }

    #[test]
    fn greedy_best_fit_balances() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        let sol = GreedyBestFit.repair(&p, detach_all(&p), &mut rng()).unwrap();
        assert!(p.is_feasible(&sol));
        // Greedy LPT on {6,3,2} over two usable machines (one must stay
        // vacant): 6 | 3+2 → peak 0.6.
        assert!((sol.peak_load(&inst) - 0.6).abs() < 1e-9, "peak={}", sol.peak_load(&inst));
    }

    #[test]
    fn repairs_respect_vacancy_quota() {
        let inst = inst(); // k_return = 1
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        for repair in default_repairs() {
            let sol = repair.repair(&p, detach_all(&p), &mut rng()).unwrap();
            assert!(
                sol.vacant_count() >= inst.k_return,
                "{} violated the vacancy quota",
                repair.name()
            );
        }
    }

    #[test]
    fn regret2_produces_feasible_balanced_solution() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        let sol = Regret2Insert.repair(&p, detach_all(&p), &mut rng()).unwrap();
        assert!(p.is_feasible(&sol));
        assert!(sol.peak_load(&inst) <= 0.9 + 1e-9);
    }

    #[test]
    fn randomized_greedy_is_feasible_across_seeds() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        for seed in 0..10 {
            let mut r = StdRng::seed_from_u64(seed);
            let sol = RandomizedGreedy { sample: 2 }.repair(&p, detach_all(&p), &mut r).unwrap();
            assert!(p.is_feasible(&sol), "seed {seed}");
        }
    }

    #[test]
    fn repair_fails_when_shard_cannot_fit() {
        // m0 (cap 20) hosts F=11 and B=9; m1 (cap 8) hosts G=5. Detach B
        // and cram G onto m0: now B fits nowhere (m0: 16+9 > 20, m1: 9 > 8),
        // so every repair must report failure.
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[20.0]);
        let m1 = b.machine(&[8.0]);
        b.shard(&[11.0], 1.0, m0); // F
        let shard_b = b.shard(&[9.0], 1.0, m0); // B
        let g = b.shard(&[5.0], 1.0, m1); // G
        let inst = b.build().unwrap();
        let p = SraProblem::new(&inst, Objective::default());
        let mut asg = Assignment::from_initial(&inst);
        asg.detach_shard(&inst, shard_b);
        asg.move_shard(&inst, g, MachineId(0));
        for repair in default_repairs() {
            let partial = SraPartial { asg: asg.clone(), removed: vec![shard_b] };
            assert!(
                repair.repair(&p, partial, &mut rng()).is_none(),
                "{} should fail",
                repair.name()
            );
        }
    }

    #[test]
    fn greedy_is_deterministic() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        let a = GreedyBestFit.repair(&p, detach_all(&p), &mut rng()).unwrap();
        let b = GreedyBestFit.repair(&p, detach_all(&p), &mut rng()).unwrap();
        assert_eq!(a.placement(), b.placement());
    }

    #[test]
    fn default_portfolio_names() {
        let ops = default_repairs();
        let names: Vec<&str> = ops.iter().map(|o| o.name()).collect();
        assert_eq!(names, vec!["greedy-best-fit", "regret-2", "randomized-greedy"]);
    }
}
