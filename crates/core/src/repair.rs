//! Repair operators: re-insert detached shards.
//!
//! All repairs share the same hard rules, enforced through
//! [`SraProblem::insertion_score`] and the vacancy budget:
//!
//! * never overload a machine,
//! * never occupy a vacant machine when doing so would leave fewer than
//!   `k_return` vacancies (the exchange compensation would become
//!   impossible),
//! * a repair that cannot place every detached shard reports failure and
//!   the iteration is discarded.
//!
//! All operators implement the in-place edit protocol: they take the
//! state's `removed` buffer, attach through `SraState::attach` (undo-logged,
//! caches updated), and hand the buffer back — on failure with the unplaced
//! tail still listed, so the engine's revert sees a consistent state.

use crate::problem::SraProblem;
use crate::state::{RegretEntry, SraState, REGRET_ABSENT, REGRET_UNKNOWN};
use rand::rngs::StdRng;
use rand::RngExt;
use rex_cluster::{Assignment, MachineId, ShardId};
use rex_lns::RepairInPlace;

/// Shared insertion state: tracks how many vacancies may still be consumed.
struct InsertCtx {
    vacancy_budget: usize,
}

impl InsertCtx {
    /// Builds the context from the state's cached vacancy budget.
    fn with_budget(vacancy_budget: usize) -> Self {
        Self { vacancy_budget }
    }

    /// Whether machine `m` may receive a shard right now.
    fn allowed(&self, asg: &Assignment, m: MachineId) -> bool {
        !asg.is_vacant(m) || self.vacancy_budget > 0
    }

    /// Registers that a shard was placed on `m` (must be called *before*
    /// the attach mutates vacancy state).
    fn consume(&mut self, asg: &Assignment, m: MachineId) {
        if asg.is_vacant(m) {
            self.vacancy_budget -= 1;
        }
    }
}

/// Sorts detached shards by decreasing demand norm (hardest first), using
/// the state's cached norms (the norm is a pure function of the static
/// demand).
fn sort_big_first_cached(state: &SraState, removed: &mut [ShardId]) {
    let norms = &state.demand_norm;
    removed.sort_by(|&a, &b| {
        norms[b.idx()]
            .partial_cmp(&norms[a.idx()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

/// Greedy best-fit: inserts shards, largest first, each on the machine with
/// the lowest insertion score.
#[derive(Clone, Copy, Debug)]
pub struct GreedyBestFit;

impl RepairInPlace<SraProblem<'_>> for GreedyBestFit {
    fn name(&self) -> &str {
        "greedy-best-fit"
    }

    fn repair(&self, p: &SraProblem<'_>, state: &mut SraState, _rng: &mut StdRng) -> bool {
        let mut removed = std::mem::take(&mut state.removed);
        sort_big_first_cached(state, &mut removed);
        rebuild_order(state, p.inst.n_machines());
        let mut ctx = InsertCtx::with_budget(state.vacancy_budget());
        for (idx, &s) in removed.iter().enumerate() {
            let Some((m, _)) = best_machine_cached(p, state, &ctx, s) else {
                removed.drain(..idx);
                state.removed = removed;
                return false;
            };
            ctx.consume(&state.asg, m);
            state.attach(p, s, m);
            reposition(state, m);
        }
        removed.clear();
        state.removed = removed;
        true
    }
}

/// Rebuilds the repair scan order: machine ids sorted by `(load, id)`
/// ascending, from the state's cached loads. Called once per in-place
/// repair invocation.
fn rebuild_order(state: &mut SraState, n_machines: usize) {
    let mut order = std::mem::take(&mut state.order);
    order.clear();
    order.extend(0..n_machines as u32);
    let loads = &state.loads;
    order.sort_unstable_by(|&a, &b| {
        loads[a as usize]
            .partial_cmp(&loads[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    state.order = order;
}

/// Restores the `(load, id)` invariant after machine `m`'s load grew: a
/// single bubble pass to the right.
fn reposition(state: &mut SraState, m: MachineId) {
    let raw = m.idx() as u32;
    let Some(mut i) = state.order.iter().position(|&x| x == raw) else {
        return;
    };
    while i + 1 < state.order.len() {
        let next = state.order[i + 1] as usize;
        let (lm, ln) = (state.loads[raw as usize], state.loads[next]);
        if ln < lm || (ln == lm && (next as u32) < raw) {
            state.order.swap(i, i + 1);
            i += 1;
        } else {
            break;
        }
    }
}

/// Best feasible machine for `s` under the insertion score, driven by the
/// load-sorted scan order with an early break. The true score of a machine
/// is its load *after* adding the shard's demand plus the migration
/// penalty, so `loads[m] + penalty` lower-bounds it (rounded addition is
/// monotone); once that bound reaches the running best, every later
/// machine in load order is beaten too. The shard's initial machine is
/// visited first — it is the only one whose penalty is zero. Selection is
/// deterministic: ties resolve to the earliest machine in scan order.
fn best_machine_cached(
    p: &SraProblem<'_>,
    state: &SraState,
    ctx: &InsertCtx,
    s: ShardId,
) -> Option<(MachineId, f64)> {
    let init_m = p.inst.initial[s.idx()];
    let mut best: Option<(MachineId, f64)> = None;
    if ctx.allowed(&state.asg, init_m) {
        if let Some(score) = p.insertion_score(&state.asg, s, init_m) {
            best = Some((init_m, score));
        }
    }
    let pen = state.pen[s.idx()];
    for &raw in &state.order {
        let m = MachineId::from(raw as usize);
        if m == init_m {
            continue;
        }
        if let Some((_, b)) = best {
            if state.loads[raw as usize] + pen >= b {
                break; // later machines have equal or larger loads
            }
        }
        if !ctx.allowed(&state.asg, m) {
            continue;
        }
        if let Some(score) = p.insertion_score(&state.asg, s, m) {
            let better = match best {
                None => true,
                Some((_, b)) => score < b,
            };
            if better {
                best = Some((m, score));
            }
        }
    }
    best
}

/// Top-3 scan for one shard over the load-sorted order (initial machine
/// first), breaking once the load lower bound reaches the running third
/// slot — so every machine left unvisited (or visited but outscored)
/// provably scores at least the final `s[2]`, which is the invariant the
/// cascade update relies on. `None` means no feasible machine (the repair
/// must fail).
fn scan_regret(
    p: &SraProblem<'_>,
    state: &SraState,
    ctx: &InsertCtx,
    s: ShardId,
) -> Option<RegretEntry> {
    let mut e = RegretEntry {
        m: [REGRET_ABSENT; 3],
        s: [f64::INFINITY; 3],
    };
    let init_m = p.inst.initial[s.idx()];
    let pen = state.pen[s.idx()];
    let consider = |m: MachineId, e: &mut RegretEntry| {
        if !ctx.allowed(&state.asg, m) {
            return;
        }
        if let Some(score) = p.insertion_score(&state.asg, s, m) {
            let raw = m.idx() as u32;
            if score < e.s[0] {
                (e.m[2], e.s[2]) = (e.m[1], e.s[1]);
                (e.m[1], e.s[1]) = (e.m[0], e.s[0]);
                (e.m[0], e.s[0]) = (raw, score);
            } else if score < e.s[1] {
                (e.m[2], e.s[2]) = (e.m[1], e.s[1]);
                (e.m[1], e.s[1]) = (raw, score);
            } else if score < e.s[2] {
                (e.m[2], e.s[2]) = (raw, score);
            }
        }
    };
    consider(init_m, &mut e);
    for &raw in &state.order {
        let m = MachineId::from(raw as usize);
        if m == init_m {
            continue;
        }
        if state.loads[raw as usize] + pen >= e.s[2] {
            break; // cannot displace any slot, nor can any later machine
        }
        consider(m, &mut e);
    }
    if e.m[0] == REGRET_ABSENT {
        None
    } else {
        Some(e)
    }
}

/// Rebuilds a regret entry after machine `m` — occupying slot `k` — grew,
/// without rescanning: the surviving slots keep exact values (their
/// machines' usage is untouched), `m` is re-scored once, and the old
/// `s[2]` remains a lower bound on every machine outside the old entry.
/// Slots stay exact while their value does not exceed that bound; a third
/// slot that would, degrades to [`REGRET_UNKNOWN`] carrying the bound.
/// Returns `None` when the exact best/second-best can no longer be derived
/// locally and a full rescan is required.
fn cascade(
    p: &SraProblem<'_>,
    state: &SraState,
    s: ShardId,
    e: &RegretEntry,
    k: usize,
    m: MachineId,
) -> Option<RegretEntry> {
    let bound = e.s[2];
    let mut cand_m = [0u32; 4];
    let mut cand_s = [0.0f64; 4];
    let mut n = 0usize;
    for j in 0..3 {
        if j != k && e.m[j] != REGRET_ABSENT && e.m[j] != REGRET_UNKNOWN {
            cand_m[n] = e.m[j];
            cand_s[n] = e.s[j];
            n += 1;
        }
    }
    // Re-score `m` (it just received a shard, so it is non-vacant and
    // always allowed) and insert it after any value-equal survivors, so
    // ties resolve deterministically toward the established slots.
    if let Some(ns) = p.insertion_score(&state.asg, s, m) {
        let mut pos = n;
        while pos > 0 && ns < cand_s[pos - 1] {
            pos -= 1;
        }
        for j in (pos..n).rev() {
            cand_m[j + 1] = cand_m[j];
            cand_s[j + 1] = cand_s[j];
        }
        cand_m[pos] = m.idx() as u32;
        cand_s[pos] = ns;
        n += 1;
    }
    if bound.is_infinite() {
        // The original scan never broke early, so the candidates are the
        // complete feasible set and missing slots are exact ABSENTs.
        if n == 0 {
            return None; // nothing feasible left; the rescan confirms & fails
        }
        let mut ne = RegretEntry {
            m: [REGRET_ABSENT; 3],
            s: [f64::INFINITY; 3],
        };
        for j in 0..n.min(3) {
            (ne.m[j], ne.s[j]) = (cand_m[j], cand_s[j]);
        }
        return Some(ne);
    }
    if n < 2 || cand_s[1] > bound {
        return None; // top-2 not provably exact any more
    }
    let third_exact = n >= 3 && cand_s[2] <= bound;
    Some(RegretEntry {
        m: [
            cand_m[0],
            cand_m[1],
            if third_exact {
                cand_m[2]
            } else {
                REGRET_UNKNOWN
            },
        ],
        s: [
            cand_s[0],
            cand_s[1],
            if third_exact { cand_s[2] } else { bound },
        ],
    })
}

/// Regret-2 insertion: repeatedly inserts the shard that would lose the
/// most by *not* getting its best machine (difference between its best and
/// second-best scores). Shards with a single feasible machine have infinite
/// regret and go first.
#[derive(Clone, Copy, Debug)]
pub struct Regret2Insert;

impl RepairInPlace<SraProblem<'_>> for Regret2Insert {
    fn name(&self) -> &str {
        "regret-2"
    }

    /// Incremental regret loop: an attach on machine `m` only changes
    /// scores *on* `m` (and only for the worse — usage grows
    /// monotonically), so a shard whose cached best and second-best live
    /// elsewhere keeps a bit-identical entry and is not rescanned. The
    /// per-round cost drops from `O(removed · machines)` to a handful of
    /// rescans, except when the vacancy budget reaches zero — that flips
    /// the allowed-set for every vacant machine, so everything is rescanned
    /// once.
    fn repair(&self, p: &SraProblem<'_>, state: &mut SraState, _rng: &mut StdRng) -> bool {
        let mut removed = std::mem::take(&mut state.removed);
        let mut entries = std::mem::take(&mut state.regret);
        rebuild_order(state, p.inst.n_machines());
        let mut ctx = InsertCtx::with_budget(state.vacancy_budget());
        entries.clear();
        for &s in &removed {
            let Some(e) = scan_regret(p, state, &ctx, s) else {
                state.removed = removed;
                state.regret = entries;
                return false;
            };
            entries.push(e);
        }
        while !removed.is_empty() {
            let mut pick = 0usize;
            let mut best_regret = f64::NEG_INFINITY;
            for (idx, e) in entries.iter().enumerate() {
                let regret = e.s[1] - e.s[0]; // INFINITY - finite = INFINITY
                if idx == 0 || regret > best_regret {
                    pick = idx;
                    best_regret = regret;
                }
            }
            let m = MachineId::from(entries[pick].m[0] as usize);
            let s = removed.swap_remove(pick);
            entries.swap_remove(pick);
            let was_vacant = state.asg.is_vacant(m);
            ctx.consume(&state.asg, m);
            state.attach(p, s, m);
            reposition(state, m);
            let rescan_all = was_vacant && ctx.vacancy_budget == 0;
            let m_raw = m.idx() as u32;
            for i in 0..removed.len() {
                if !rescan_all {
                    let e = entries[i];
                    let Some(k) = e.m.iter().position(|&x| x == m_raw) else {
                        continue; // scores elsewhere are untouched
                    };
                    if let Some(ne) = cascade(p, state, removed[i], &e, k, m) {
                        entries[i] = ne;
                        continue;
                    }
                }
                let Some(e) = scan_regret(p, state, &ctx, removed[i]) else {
                    state.removed = removed;
                    state.regret = entries;
                    return false;
                };
                entries[i] = e;
            }
        }
        entries.clear();
        state.removed = removed;
        state.regret = entries;
        true
    }
}

/// Randomized greedy: like best-fit but each shard samples `sample`
/// candidate machines and takes the best of the sample. Adds the
/// diversification pure best-fit lacks, at a fraction of its cost on large
/// fleets.
#[derive(Clone, Copy, Debug)]
pub struct RandomizedGreedy {
    /// Number of machines sampled per shard.
    pub sample: usize,
}

impl RepairInPlace<SraProblem<'_>> for RandomizedGreedy {
    fn name(&self) -> &str {
        "randomized-greedy"
    }

    fn repair(&self, p: &SraProblem<'_>, state: &mut SraState, rng: &mut StdRng) -> bool {
        let mut removed = std::mem::take(&mut state.removed);
        sort_big_first_cached(state, &mut removed);
        rebuild_order(state, p.inst.n_machines());
        let mut ctx = InsertCtx::with_budget(state.vacancy_budget());
        let n = p.inst.n_machines();
        for (idx, &s) in removed.iter().enumerate() {
            let mut best: Option<(MachineId, f64)> = None;
            for _ in 0..self.sample.max(1) {
                let m = MachineId::from(rng.random_range(0..n));
                if !ctx.allowed(&state.asg, m) {
                    continue;
                }
                if let Some((_, b)) = best {
                    let pen = if m == p.inst.initial[s.idx()] {
                        0.0
                    } else {
                        state.pen[s.idx()]
                    };
                    if state.loads[m.idx()] + pen >= b {
                        continue;
                    }
                }
                if let Some(score) = p.insertion_score(&state.asg, s, m) {
                    if best.is_none_or(|(_, b)| score < b) {
                        best = Some((m, score));
                    }
                }
            }
            // Fall back to the full scan when sampling found nothing — the
            // shard may genuinely have only a few feasible hosts.
            let found = match best {
                Some(x) => Some(x),
                None => best_machine_cached(p, state, &ctx, s),
            };
            let Some((m, _)) = found else {
                removed.drain(..idx);
                state.removed = removed;
                return false;
            };
            ctx.consume(&state.asg, m);
            state.attach(p, s, m);
            reposition(state, m);
        }
        removed.clear();
        state.removed = removed;
        true
    }
}

/// The full default repair portfolio used by SRA.
pub fn default_repairs_in_place<'a>() -> Vec<Box<dyn RepairInPlace<SraProblem<'a>>>> {
    vec![
        Box::new(GreedyBestFit),
        Box::new(Regret2Insert),
        Box::new(RandomizedGreedy { sample: 8 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rex_cluster::{Instance, InstanceBuilder, Objective, ObjectiveKind};
    use rex_lns::{LnsProblem, LnsProblemInPlace};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn inst() -> Instance {
        let mut b = InstanceBuilder::new(1).label("r");
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        b.shard(&[6.0], 1.0, m0);
        b.shard(&[3.0], 1.0, m0);
        b.shard(&[2.0], 1.0, m1);
        b.build().unwrap()
    }

    fn detach_all_state(p: &SraProblem<'_>) -> SraState {
        let mut state = p.make_state(Assignment::from_initial(p.inst));
        for i in 0..p.inst.n_shards() {
            state.detach(p, ShardId::from(i));
        }
        state
    }

    #[test]
    fn greedy_best_fit_balances() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        let mut state = detach_all_state(&p);
        assert!(RepairInPlace::repair(
            &GreedyBestFit,
            &p,
            &mut state,
            &mut rng()
        ));
        let sol = state.solution();
        assert!(LnsProblem::is_feasible(&p, sol));
        // Greedy LPT on {6,3,2} over two usable machines (one must stay
        // vacant): 6 | 3+2 → peak 0.6.
        assert!(
            (sol.peak_load(&inst) - 0.6).abs() < 1e-9,
            "peak={}",
            sol.peak_load(&inst)
        );
    }

    #[test]
    fn repairs_respect_vacancy_quota() {
        let inst = inst(); // k_return = 1
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        for repair in default_repairs_in_place() {
            let mut state = detach_all_state(&p);
            assert!(
                repair.repair(&p, &mut state, &mut rng()),
                "{} failed",
                repair.name()
            );
            assert!(
                state.solution().vacant_count() >= inst.k_return,
                "{} violated the vacancy quota",
                repair.name()
            );
        }
    }

    #[test]
    fn regret2_produces_feasible_balanced_solution() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        let mut state = detach_all_state(&p);
        assert!(RepairInPlace::repair(
            &Regret2Insert,
            &p,
            &mut state,
            &mut rng()
        ));
        assert!(LnsProblem::is_feasible(&p, state.solution()));
        assert!(state.solution().peak_load(&inst) <= 0.9 + 1e-9);
    }

    #[test]
    fn randomized_greedy_is_feasible_across_seeds() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        for seed in 0..10 {
            let mut r = StdRng::seed_from_u64(seed);
            let mut state = detach_all_state(&p);
            assert!(
                RepairInPlace::repair(&RandomizedGreedy { sample: 2 }, &p, &mut state, &mut r),
                "seed {seed}"
            );
            assert!(LnsProblem::is_feasible(&p, state.solution()), "seed {seed}");
        }
    }

    #[test]
    fn greedy_is_deterministic() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        let mut sa = detach_all_state(&p);
        let mut sb = detach_all_state(&p);
        assert!(RepairInPlace::repair(
            &GreedyBestFit,
            &p,
            &mut sa,
            &mut rng()
        ));
        assert!(RepairInPlace::repair(
            &GreedyBestFit,
            &p,
            &mut sb,
            &mut rng()
        ));
        assert_eq!(sa.solution().placement(), sb.solution().placement());
    }

    #[test]
    fn default_portfolio_names() {
        let ops = default_repairs_in_place();
        let names: Vec<&str> = ops.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            vec!["greedy-best-fit", "regret-2", "randomized-greedy"]
        );
    }

    #[test]
    fn in_place_repairs_complete_detached_states() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        for repair in default_repairs_in_place() {
            let mut state = detach_all_state(&p);
            let ok = repair.repair(&p, &mut state, &mut rng());
            assert!(ok, "{} failed on a repairable state", repair.name());
            assert!(state.removed().is_empty());
            assert!(p.state_feasible(&state), "{}", repair.name());
            assert!(
                LnsProblem::is_feasible(&p, state.solution()),
                "{} produced an infeasible solution",
                repair.name()
            );
            state.solution().validate_consistency(&inst).unwrap();
        }
    }

    #[test]
    fn in_place_repair_failure_leaves_revertible_state() {
        // m0 (cap 20) hosts F=11 and B=9; m1 (cap 8) hosts G=5. Detach B
        // and cram G onto m0: now B fits nowhere (m0: 16+9 > 20, m1: 9 > 8),
        // so every repair must report failure.
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[20.0]);
        let m1 = b.machine(&[8.0]);
        b.shard(&[11.0], 1.0, m0);
        let shard_b = b.shard(&[9.0], 1.0, m0);
        let g = b.shard(&[5.0], 1.0, m1);
        let inst = b.build().unwrap();
        let p = SraProblem::new(&inst, Objective::default());
        let mut asg = Assignment::from_initial(&inst);
        asg.move_shard(&inst, g, MachineId(0));
        let before = asg.placement().to_vec();
        for repair in default_repairs_in_place() {
            let mut state = p.make_state(asg.clone());
            state.detach(&p, shard_b);
            assert!(
                !repair.repair(&p, &mut state, &mut rng()),
                "{} should fail",
                repair.name()
            );
            LnsProblemInPlace::revert(&p, &mut state);
            assert_eq!(state.solution().placement(), before.as_slice());
        }
    }
}
