//! The shard-reassignment problem in the LNS framework's terms.

use rex_cluster::{
    plan_migration, Assignment, Instance, MachineId, Objective, PlannerConfig, ShardId,
};
use rex_lns::LnsProblem;

/// The reassignment problem bound to an instance and an objective.
pub struct SraProblem<'a> {
    /// The instance being rebalanced.
    pub inst: &'a Instance,
    /// Objective (balance term + migration-cost weight).
    pub objective: Objective,
    /// When true, feasibility additionally requires that a transient-safe
    /// migration schedule exists from the initial placement (expensive;
    /// used by SRA's fallback pass and the ablation benches).
    pub plan_every: bool,
    /// When true (SRA's default), a candidate may only become the *global
    /// best* if a transient-safe migration schedule to it exists. Far
    /// cheaper than `plan_every`: planning runs only on would-be bests.
    pub plan_on_best: bool,
    /// Planner configuration used for plannability checks.
    pub planner: PlannerConfig,
    /// Weight of the plateau-breaking mean-square-load term added to the
    /// *search* objective (reported metrics are unaffected). With several
    /// machines tied at the peak, pure peak load gives the search no
    /// gradient — this term strictly rewards unloading any hot machine.
    pub smoothing: f64,
    /// Cached total move cost, used to normalize insertion penalties.
    total_move_cost: f64,
    /// `escapable[s]`: shard `s` can leave its initial machine under the
    /// transient source overhead `α·d` (computed once by a smallest-first
    /// departure cascade). With `α > 0`, a nearly-full machine holding only
    /// large shards is *sealed* — nothing can ever migrate off it — and
    /// targets that move its shards are undeliverable by any schedule.
    escapable: Vec<bool>,
    /// `drained[m]`: machine `m` is being decommissioned — it must end
    /// vacant and may not receive any insertion. Empty = no drain.
    drained: Vec<bool>,
}

/// Smallest-first departure cascade for one machine: a shard can leave once
/// `α·d` fits in the headroom freed by earlier (smaller) departures.
fn compute_escapable(inst: &Instance) -> Vec<bool> {
    let mut out = vec![true; inst.n_shards()];
    if inst.alpha <= 0.0 {
        return out; // no source overhead: every shard can always leave
    }
    let asg = Assignment::from_initial(inst);
    for mi in 0..inst.n_machines() {
        let m = MachineId::from(mi);
        let mut shards: Vec<ShardId> = asg.shards_on(m).to_vec();
        shards.sort_by(|&a, &b| {
            inst.demand(a)
                .norm()
                .partial_cmp(&inst.demand(b).norm())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut free = asg.usage(m).headroom(inst.capacity(m));
        for s in shards {
            let d = inst.demand(s);
            let overhead = d.scaled(inst.alpha);
            if overhead.fits_within(&free) {
                free += d; // it departs, freeing its demand
            } else {
                out[s.idx()] = false;
            }
        }
    }
    out
}

impl<'a> SraProblem<'a> {
    /// Binds the problem to `inst` with the given objective. Plannability
    /// gating of global bests is on by default.
    pub fn new(inst: &'a Instance, objective: Objective) -> Self {
        let total_move_cost = inst.shards.iter().map(|s| s.move_cost).sum();
        Self {
            inst,
            objective,
            plan_every: false,
            plan_on_best: true,
            planner: PlannerConfig::default(),
            smoothing: 0.05,
            total_move_cost,
            escapable: compute_escapable(inst),
            drained: vec![false; inst.n_machines()],
        }
    }

    /// Marks machines as draining (planned decommission): they must end
    /// vacant — on top of the `k_return` quota — and repairs will never
    /// place a shard on them. The machines keep serving while their shards
    /// migrate away, so schedules may still copy *from* them.
    pub fn with_drain(mut self, machines: &[MachineId]) -> Self {
        for &m in machines {
            self.drained[m.idx()] = true;
        }
        self
    }

    /// Whether machine `m` is being drained.
    #[inline]
    pub fn is_drained(&self, m: MachineId) -> bool {
        self.drained[m.idx()]
    }

    /// Whether shard `s` can ever migrate off its initial machine (see the
    /// field documentation on `escapable`).
    #[inline]
    pub fn is_escapable(&self, s: ShardId) -> bool {
        self.escapable[s.idx()]
    }

    /// Enables per-candidate plannability checking.
    pub fn with_plan_every(mut self, planner: PlannerConfig) -> Self {
        self.plan_every = true;
        self.planner = planner;
        self
    }

    /// Disables all plannability checks (ablation only: the resulting best
    /// may be undeliverable).
    pub fn without_plan_checks(mut self) -> Self {
        self.plan_every = false;
        self.plan_on_best = false;
        self
    }

    /// Whether inserting shard `s` on machine `m` is *transiently
    /// admissible*: a shard that migrates onto `m` needs `(1+α)·d` free on
    /// arrival, so a target that fills `m` beyond `C − α·d` can never be
    /// delivered by any schedule. Shards staying on their initial machine
    /// never migrate and only need plain capacity.
    #[inline]
    pub fn admissible(&self, asg: &Assignment, s: ShardId, m: MachineId) -> bool {
        if self.drained[m.idx()] {
            return false; // draining machines accept nothing, ever
        }
        if m == self.inst.initial[s.idx()] {
            asg.fits(self.inst, s, m)
        } else {
            self.escapable[s.idx()] && {
                let inflight = self.inst.demand(s).scaled(1.0 + self.inst.alpha);
                asg.usage_rows()
                    .fits_after_add(m.idx(), &inflight, self.inst.capacity(m))
            }
        }
    }

    /// Score of inserting detached shard `s` onto machine `m`: the
    /// machine's load after insertion, plus the objective's normalized
    /// migration penalty when `m` differs from the shard's initial machine.
    /// Lower is better. Returns `None` when the insertion is not
    /// transiently admissible (see [`SraProblem::admissible`]) — proposing
    /// undeliverable targets would only waste the plannability gate.
    ///
    /// Minimizing the *local* load-after is the classic best-fit surrogate
    /// for minimizing the global peak: the global peak after insertion is
    /// `max(peak elsewhere, load_after(m))`, and only the second term
    /// depends on the choice of `m`.
    #[inline]
    pub fn insertion_score(&self, asg: &Assignment, s: ShardId, m: MachineId) -> Option<f64> {
        if !self.admissible(asg, s, m) {
            return None;
        }
        // Straight off the packed usage row — materializing a ResourceVec
        // here costs ~20% of the whole search at web-scale fleet sizes.
        let load_after = asg.usage_rows().max_ratio_after_add(
            m.idx(),
            self.inst.demand(s),
            self.inst.capacity(m),
        );
        let penalty = if m != self.inst.initial[s.idx()] && self.total_move_cost > 0.0 {
            self.objective.lambda * self.inst.shards[s.idx()].move_cost / self.total_move_cost
        } else {
            0.0
        };
        Some(load_after + penalty)
    }

    /// The vacancy budget available to a repair pass: how many currently
    /// vacant machines may be occupied while still leaving `k_return`
    /// vacant at the end — plus one reserved vacancy per draining machine
    /// (they must end vacant and cannot serve as the returned
    /// compensation).
    #[inline]
    pub fn vacancy_budget(&self, asg: &Assignment) -> usize {
        asg.vacant_count().saturating_sub(self.reserved_vacancies())
    }

    /// Vacancies that must remain at the end: the `k_return` quota plus one
    /// per draining machine.
    #[inline]
    pub(crate) fn reserved_vacancies(&self) -> usize {
        self.inst.k_return + self.drained.iter().filter(|&&d| d).count()
    }

    /// The migration-penalty component of [`Self::insertion_score`] for
    /// placing `s` on a non-initial machine (zero when move costs are
    /// disabled). Independent of the assignment, so the in-place state
    /// caches it per shard.
    #[inline]
    pub(crate) fn insertion_penalty(&self, s: ShardId) -> f64 {
        if self.total_move_cost > 0.0 {
            self.objective.lambda * self.inst.shards[s.idx()].move_cost / self.total_move_cost
        } else {
            0.0
        }
    }

    /// Cached total move cost (normalizer of the migration penalty).
    #[inline]
    pub(crate) fn total_move_cost(&self) -> f64 {
        self.total_move_cost
    }
}

impl LnsProblem for SraProblem<'_> {
    type Solution = Assignment;

    fn objective(&self, sol: &Assignment) -> f64 {
        let base = self.objective.value(self.inst, sol, &self.inst.initial);
        if self.smoothing > 0.0 {
            let (_, mean_sq) = sol.load_stats(self.inst);
            base + self.smoothing * mean_sq
        } else {
            base
        }
    }

    fn is_feasible(&self, sol: &Assignment) -> bool {
        if !sol.is_complete()
            || !sol.is_capacity_feasible(self.inst)
            || sol.vacant_count() < self.inst.k_return + self.drained.iter().filter(|&&d| d).count()
        {
            return false;
        }
        for m in 0..self.drained.len() {
            if self.drained[m] && !sol.is_vacant(MachineId::from(m)) {
                return false;
            }
        }
        if self.plan_every {
            plan_migration(
                self.inst,
                &self.inst.initial,
                sol.placement(),
                &self.planner,
            )
            .is_ok()
        } else {
            true
        }
    }

    fn accept_best(&self, sol: &Assignment) -> bool {
        if self.plan_on_best && !self.plan_every {
            // The gate runs on every would-be best, so failures must be
            // cheap: a tighter move budget than the final planning pass.
            // Anything needing > 2× staging churn is a poor best anyway.
            let gate_cfg = PlannerConfig {
                move_budget_factor: self.planner.move_budget_factor.min(2.0),
                ..self.planner
            };
            plan_migration(self.inst, &self.inst.initial, sol.placement(), &gate_cfg).is_ok()
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::{InstanceBuilder, ObjectiveKind};

    fn inst() -> Instance {
        let mut b = InstanceBuilder::new(1).label("p");
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        b.shard(&[6.0], 1.0, m0);
        b.shard(&[2.0], 1.0, m1);
        b.build().unwrap()
    }

    #[test]
    fn objective_matches_cluster_objective_without_smoothing() {
        let inst = inst();
        let mut p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        p.smoothing = 0.0;
        let asg = Assignment::from_initial(&inst);
        assert!((LnsProblem::objective(&p, &asg) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn smoothing_breaks_peak_plateaus() {
        // Two placements with identical peak: smoothing must order them by
        // how loaded the non-peak machines are.
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        let _m2 = b.machine(&[10.0]);
        b.shard(&[8.0], 1.0, m0); // fixed peak holder
        b.shard(&[4.0], 1.0, m1);
        let inst = b.build().unwrap();
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        let concentrated = Assignment::from_initial(&inst); // loads .8, .4, 0
        let mut spread = Assignment::from_initial(&inst);
        spread.move_shard(&inst, ShardId(1), MachineId(2)); // same loads, same msq
                                                            // Same stats → equal. Now pile shard 1 onto m0's neighbour? Use a
                                                            // genuinely different shape: move shard 1 onto m0 would change the
                                                            // peak, so instead compare against splitting demand: not possible
                                                            // with 2 shards — assert the smoothed objective equals peak + w·msq.
        let (peak, msq) = concentrated.load_stats(&inst);
        let got = LnsProblem::objective(&p, &concentrated);
        assert!((got - (peak + p.smoothing * msq)).abs() < 1e-12);
        let _ = spread;
    }

    #[test]
    fn feasibility_requires_vacancy_quota() {
        // Two shards on m0 so moving one of them cannot vacate it.
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        b.shard(&[3.0], 1.0, m0);
        b.shard(&[3.0], 1.0, m0);
        b.shard(&[2.0], 1.0, m1);
        let inst = b.build().unwrap(); // k_return = 1
        let p = SraProblem::new(&inst, Objective::default());
        let mut asg = Assignment::from_initial(&inst);
        assert!(p.is_feasible(&asg));
        asg.move_shard(&inst, ShardId(0), MachineId(2)); // occupy the only vacancy
        assert!(!p.is_feasible(&asg));
    }

    #[test]
    fn feasibility_rejects_incomplete() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::default());
        let mut asg = Assignment::from_initial(&inst);
        asg.detach_shard(&inst, ShardId(0));
        assert!(!p.is_feasible(&asg));
    }

    #[test]
    fn insertion_score_prefers_lighter_machine() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::pure(ObjectiveKind::PeakLoad));
        let mut asg = Assignment::from_initial(&inst);
        asg.detach_shard(&inst, ShardId(0));
        let s0 = p.insertion_score(&asg, ShardId(0), MachineId(1)).unwrap(); // load 0.8
        let s1 = p.insertion_score(&asg, ShardId(0), MachineId(2)).unwrap(); // load 0.6
        assert!(s1 < s0);
    }

    #[test]
    fn insertion_score_none_when_does_not_fit() {
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let _m1 = b.machine(&[5.0]);
        b.shard(&[6.0], 1.0, m0);
        let inst = b.build().unwrap();
        let p = SraProblem::new(&inst, Objective::default());
        let mut asg = Assignment::from_initial(&inst);
        asg.detach_shard(&inst, ShardId(0));
        assert!(p.insertion_score(&asg, ShardId(0), MachineId(1)).is_none());
        assert!(p.insertion_score(&asg, ShardId(0), MachineId(0)).is_some());
    }

    #[test]
    fn insertion_score_penalizes_moving_away_from_initial() {
        let inst = inst();
        let p = SraProblem::new(
            &inst,
            Objective {
                kind: ObjectiveKind::PeakLoad,
                lambda: 1.0,
            },
        );
        let mut asg = Assignment::from_initial(&inst);
        asg.detach_shard(&inst, ShardId(1)); // initial machine: m1
                                             // Same resulting machine load is impossible here, so compare the
                                             // penalty component directly: score(m1) has no penalty term.
        let back = p.insertion_score(&asg, ShardId(1), MachineId(1)).unwrap();
        let away = p.insertion_score(&asg, ShardId(1), MachineId(2)).unwrap();
        // Both machines are empty (m1 after detach, m2 always), equal
        // capacity, so load_after is equal and the difference is the penalty.
        assert!((away - back - 1.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn vacancy_budget_counts_spare_vacancies() {
        let inst = inst();
        let p = SraProblem::new(&inst, Objective::default());
        let mut asg = Assignment::from_initial(&inst);
        assert_eq!(p.vacancy_budget(&asg), 0); // 1 vacant, k_return=1
        asg.detach_shard(&inst, ShardId(1)); // m1 becomes vacant
        assert_eq!(p.vacancy_budget(&asg), 1);
    }

    #[test]
    fn plan_every_detects_undeliverable_targets() {
        // Two machines 90% full; swapping their shards cannot be scheduled
        // (no staging space anywhere).
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        b.shard(&[9.0], 1.0, m0);
        b.shard(&[9.0], 1.0, m1);
        let inst = b.build().unwrap();
        let p =
            SraProblem::new(&inst, Objective::default()).with_plan_every(PlannerConfig::default());
        let swapped = Assignment::from_placement(&inst, vec![MachineId(1), MachineId(0)]).unwrap();
        assert!(!p.is_feasible(&swapped));
        let identity = Assignment::from_initial(&inst);
        assert!(p.is_feasible(&identity));
    }
}
