//! # rex-solver
//!
//! The paper formulates shard reassignment as a **linearly constrained
//! integer program**. This crate makes that formulation executable without
//! a proprietary solver:
//!
//! * [`model::IpModel`] — an explicit, inspectable build of the IP
//!   (variables `x_{s,m}`, `y_m`, `t`; assignment, capacity, peak-load,
//!   vacancy-linking, and return-quota constraints), with an LP-format
//!   printer and a constraint checker used to validate solutions from *any*
//!   algorithm against the formulation,
//! * [`bounds`] — fractional lower bounds on the optimal peak load
//!   (vacancy-aware mediant bound, largest-shard bound),
//! * [`exact::branch_and_bound`] — an exact solver for the small instances
//!   where optimality gaps are reportable (experiment E7 / Table 4), with
//!   capacity-class symmetry breaking and bound-based pruning.
//!
//! The IP (like the paper's) optimizes the *target* placement; transient
//! schedulability is checked outside the program by the migration planner.

pub mod bounds;
pub mod exact;
pub mod model;

pub use bounds::{largest_shard_bound, mediant_bound, peak_lower_bound};
pub use exact::{branch_and_bound, ExactConfig, ExactResult};
pub use model::{IpModel, Violation};
