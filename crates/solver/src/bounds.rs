//! Fractional lower bounds on the optimal peak load.

use rex_cluster::{Instance, MachineId};

/// Vacancy-aware mediant bound.
///
/// For each dimension `r`, any placement that leaves at least `k_return`
/// machines vacant can use at most the total capacity minus the `k_return`
/// smallest per-machine capacities in `r`. By the mediant inequality,
/// `max_m U_m[r]/C_m[r] ≥ Σ_m U_m[r] / Σ_m C_m[r]` over the machines
/// actually in use, hence the optimal peak is at least
/// `D_r / (C_r - smallest k caps)` for every `r`.
pub fn mediant_bound(inst: &Instance) -> f64 {
    let demand = inst.total_demand();
    let mut best = 0.0f64;
    for r in 0..inst.dims {
        let mut caps: Vec<f64> = inst.machines.iter().map(|m| m.capacity[r]).collect();
        caps.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let usable: f64 = caps[inst.k_return.min(caps.len())..].iter().sum();
        let b = if usable > 0.0 {
            demand[r] / usable
        } else if demand[r] > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        best = best.max(b);
    }
    best
}

/// Largest-shard bound: every shard must live somewhere, so the peak is at
/// least `min_m max_r d_s[r]/C_m[r]` for the shard that maximizes that.
pub fn largest_shard_bound(inst: &Instance) -> f64 {
    let mut best = 0.0f64;
    for s in &inst.shards {
        let cheapest = inst
            .machines
            .iter()
            .map(|m| s.demand.max_ratio(&m.capacity))
            .fold(f64::INFINITY, f64::min);
        if cheapest.is_finite() {
            best = best.max(cheapest);
        }
    }
    best
}

/// The combined lower bound used for pruning and for gap reporting.
pub fn peak_lower_bound(inst: &Instance) -> f64 {
    mediant_bound(inst).max(largest_shard_bound(inst))
}

/// Which machines are tied for the smallest capacity signature (used by the
/// symmetry-breaking in the exact solver): returns a class id per machine
/// such that machines with identical capacity vectors share a class.
pub fn capacity_classes(inst: &Instance) -> Vec<usize> {
    let mut classes: Vec<(Vec<u64>, usize)> = Vec::new();
    let mut out = Vec::with_capacity(inst.n_machines());
    for m in &inst.machines {
        // Bit-exact signature: capacities come from generators, not
        // arithmetic, so equality is meaningful.
        let sig: Vec<u64> = m.capacity.as_slice().iter().map(|x| x.to_bits()).collect();
        let id = match classes.iter().find(|(s, _)| *s == sig) {
            Some((_, id)) => *id,
            None => {
                let id = classes.len();
                classes.push((sig, id));
                id
            }
        };
        out.push(id);
    }
    out
}

/// Convenience: machine ids grouped by capacity class.
pub fn machines_by_class(inst: &Instance) -> Vec<Vec<MachineId>> {
    let classes = capacity_classes(inst);
    let n_classes = classes.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups = vec![Vec::new(); n_classes];
    for (i, &c) in classes.iter().enumerate() {
        groups[c].push(MachineId::from(i));
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::InstanceBuilder;

    fn inst(k_return: usize) -> Instance {
        let mut b = InstanceBuilder::new(1).k_return(k_return);
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        b.shard(&[6.0], 1.0, m0);
        b.shard(&[6.0], 1.0, m1);
        b.build().unwrap()
    }

    #[test]
    fn mediant_accounts_for_vacancy() {
        // Total demand 12. With k_return=1 usable capacity is 20 → 0.6.
        let i = inst(1);
        assert!((mediant_bound(&i) - 0.6).abs() < 1e-12);
        // With k_return=0 usable capacity is 30 → 0.4.
        let i0 = inst(0);
        assert!((mediant_bound(&i0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn largest_shard_bound_is_tight_for_big_shards() {
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let _m1 = b.machine(&[20.0]);
        b.shard(&[8.0], 1.0, m0);
        let i = b.build().unwrap();
        // The 8-shard's cheapest home is the 20-cap machine: 0.4.
        assert!((largest_shard_bound(&i) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn combined_bound_takes_max() {
        let i = inst(1);
        assert!(peak_lower_bound(&i) >= mediant_bound(&i));
        assert!(peak_lower_bound(&i) >= largest_shard_bound(&i));
    }

    #[test]
    fn capacity_classes_group_identical_machines() {
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let _m1 = b.machine(&[10.0]);
        let _m2 = b.machine(&[20.0]);
        b.shard(&[1.0], 1.0, m0);
        let i = b.build().unwrap();
        let classes = capacity_classes(&i);
        assert_eq!(classes[0], classes[1]);
        assert_ne!(classes[0], classes[2]);
        let groups = machines_by_class(&i);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn bounds_are_actual_lower_bounds_for_any_placement() {
        use rex_cluster::Assignment;
        let i = inst(1);
        let asg = Assignment::from_initial(&i);
        assert!(asg.peak_load(&i) + 1e-12 >= peak_lower_bound(&i));
    }
}
