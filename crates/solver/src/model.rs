//! The explicit IP model of the paper.
//!
//! Variables, for an instance with `S` shards and `M` machines:
//!
//! * `x_{s,m} ∈ {0,1}` — shard `s` placed on machine `m`,
//! * `y_m ∈ {0,1}` — machine `m` ends vacant (returnable),
//! * `t ∈ ℝ≥0` — the peak normalized load.
//!
//! Objective: `min t + λ · Σ_{s,m≠A0(s)} (cost_s / Σcost) · x_{s,m}`.
//!
//! Constraints:
//!
//! 1. assignment:     `Σ_m x_{s,m} = 1`                        for every `s`
//! 2. capacity:       `Σ_s d_s[r]·x_{s,m} ≤ C_m[r]`            for every `m, r`
//! 3. peak linkage:   `Σ_s d_s[r]·x_{s,m} − C_m[r]·t ≤ 0`      for every `m, r`
//! 4. vacancy link:   `x_{s,m} + y_m ≤ 1`                      for every `s, m`
//! 5. return quota:   `Σ_m y_m ≥ k`
//!
//! The model is materialized sparsely so it can be printed in LP format
//! (for inspection or external solvers) and so candidate placements from
//! any algorithm can be *checked against the formulation itself* — that
//! check is part of the integration tests, tying SRA's outputs back to the
//! paper's IP.

use rex_cluster::{Instance, MachineId};
use std::fmt::Write as _;

/// Comparison sense of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

/// One sparse linear constraint over the model's variables.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Human-readable row name (LP output, violation reports).
    pub name: String,
    /// `(variable index, coefficient)` pairs.
    pub terms: Vec<(usize, f64)>,
    /// Comparison sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A violated constraint, as reported by [`IpModel::check`].
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the violated row.
    pub constraint: String,
    /// Left-hand-side value attained.
    pub lhs: f64,
    /// Sense of the row.
    pub sense: Sense,
    /// Right-hand side of the row.
    pub rhs: f64,
}

/// The materialized integer program.
#[derive(Clone, Debug)]
pub struct IpModel {
    n_shards: usize,
    n_machines: usize,
    /// Objective coefficients per variable (variable order: all `x_{s,m}`
    /// in shard-major order, then `y_m`, then `t`).
    pub objective: Vec<f64>,
    /// All constraint rows.
    pub constraints: Vec<Constraint>,
}

impl IpModel {
    /// Index of `x_{s,m}`.
    #[inline]
    pub fn x(&self, s: usize, m: usize) -> usize {
        s * self.n_machines + m
    }

    /// Index of `y_m`.
    #[inline]
    pub fn y(&self, m: usize) -> usize {
        self.n_shards * self.n_machines + m
    }

    /// Index of `t`.
    #[inline]
    pub fn t(&self) -> usize {
        self.n_shards * self.n_machines + self.n_machines
    }

    /// Total number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_shards * self.n_machines + self.n_machines + 1
    }

    /// Number of constraint rows.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Builds the model from an instance with migration-cost weight
    /// `lambda` (matching [`rex_cluster::Objective::lambda`]).
    pub fn build(inst: &Instance, lambda: f64) -> Self {
        let s_n = inst.n_shards();
        let m_n = inst.n_machines();
        let mut model = IpModel {
            n_shards: s_n,
            n_machines: m_n,
            objective: vec![0.0; s_n * m_n + m_n + 1],
            constraints: Vec::new(),
        };

        // Objective: t + λ-normalized move costs.
        let t_idx = model.t();
        model.objective[t_idx] = 1.0;
        let total_cost: f64 = inst.shards.iter().map(|s| s.move_cost).sum();
        if lambda > 0.0 && total_cost > 0.0 {
            for s in 0..s_n {
                for m in 0..m_n {
                    if MachineId::from(m) != inst.initial[s] {
                        let idx = model.x(s, m);
                        model.objective[idx] = lambda * inst.shards[s].move_cost / total_cost;
                    }
                }
            }
        }

        // (1) assignment.
        for s in 0..s_n {
            model.constraints.push(Constraint {
                name: format!("assign[s{s}]"),
                terms: (0..m_n).map(|m| (model.x(s, m), 1.0)).collect(),
                sense: Sense::Eq,
                rhs: 1.0,
            });
        }

        // (2) capacity and (3) peak linkage.
        for m in 0..m_n {
            let cap = &inst.machines[m].capacity;
            for r in 0..inst.dims {
                let terms: Vec<(usize, f64)> = (0..s_n)
                    .filter(|&s| inst.shards[s].demand[r] != 0.0)
                    .map(|s| (model.x(s, m), inst.shards[s].demand[r]))
                    .collect();
                model.constraints.push(Constraint {
                    name: format!("cap[m{m},r{r}]"),
                    terms: terms.clone(),
                    sense: Sense::Le,
                    rhs: cap[r],
                });
                let mut peak_terms = terms;
                peak_terms.push((t_idx, -cap[r]));
                model.constraints.push(Constraint {
                    name: format!("peak[m{m},r{r}]"),
                    terms: peak_terms,
                    sense: Sense::Le,
                    rhs: 0.0,
                });
            }
        }

        // (4) vacancy linking.
        for s in 0..s_n {
            for m in 0..m_n {
                model.constraints.push(Constraint {
                    name: format!("vac[s{s},m{m}]"),
                    terms: vec![(model.x(s, m), 1.0), (model.y(m), 1.0)],
                    sense: Sense::Le,
                    rhs: 1.0,
                });
            }
        }

        // (5) return quota.
        model.constraints.push(Constraint {
            name: "quota".to_string(),
            terms: (0..m_n).map(|m| (model.y(m), 1.0)).collect(),
            sense: Sense::Ge,
            rhs: inst.k_return as f64,
        });

        model
    }

    /// Converts a placement into the induced variable vector: `x` from the
    /// placement, `y_m = 1` exactly for vacant machines, and `t` = the
    /// placement's peak load.
    pub fn variables_from_placement(&self, inst: &Instance, placement: &[MachineId]) -> Vec<f64> {
        assert_eq!(placement.len(), self.n_shards);
        let mut v = vec![0.0; self.n_vars()];
        let mut occupied = vec![false; self.n_machines];
        for (s, &m) in placement.iter().enumerate() {
            v[self.x(s, m.idx())] = 1.0;
            occupied[m.idx()] = true;
        }
        for m in 0..self.n_machines {
            if !occupied[m] {
                v[self.y(m)] = 1.0;
            }
        }
        let asg = rex_cluster::Assignment::from_placement(inst, placement.to_vec())
            .expect("placement shape already validated");
        let t_idx = self.t();
        v[t_idx] = asg.peak_load(inst);
        v
    }

    /// Objective value of a variable vector.
    pub fn objective_value(&self, vars: &[f64]) -> f64 {
        self.objective.iter().zip(vars).map(|(c, v)| c * v).sum()
    }

    /// Checks a variable vector against every constraint; returns the
    /// violated rows (empty = the vector is IP-feasible).
    pub fn check(&self, vars: &[f64]) -> Vec<Violation> {
        let tol = 1e-6;
        let mut out = Vec::new();
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(i, coef)| coef * vars[i]).sum();
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                out.push(Violation {
                    constraint: c.name.clone(),
                    lhs,
                    sense: c.sense,
                    rhs: c.rhs,
                });
            }
        }
        out
    }

    /// Renders the model in (CPLEX-style) LP format, for inspection or for
    /// feeding an external solver.
    pub fn to_lp_string(&self) -> String {
        let mut s = String::new();
        s.push_str("Minimize\n obj:");
        for (i, &c) in self.objective.iter().enumerate() {
            if c != 0.0 {
                let _ = write!(s, " + {c} v{i}");
            }
        }
        s.push_str("\nSubject To\n");
        for c in &self.constraints {
            let _ = write!(s, " {}:", c.name);
            for &(i, coef) in &c.terms {
                let _ = write!(s, " + {coef} v{i}");
            }
            let op = match c.sense {
                Sense::Le => "<=",
                Sense::Ge => ">=",
                Sense::Eq => "=",
            };
            let _ = writeln!(s, " {op} {}", c.rhs);
        }
        s.push_str("Binaries\n");
        for i in 0..self.n_vars() - 1 {
            let _ = write!(s, " v{i}");
        }
        let _ = writeln!(s, "\nEnd");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::{Assignment, InstanceBuilder, ShardId};

    fn inst() -> Instance {
        let mut b = InstanceBuilder::new(2);
        let m0 = b.machine(&[10.0, 10.0]);
        let m1 = b.machine(&[10.0, 10.0]);
        let _x = b.exchange_machine(&[10.0, 10.0]);
        b.shard(&[4.0, 2.0], 2.0, m0);
        b.shard(&[3.0, 3.0], 1.0, m1);
        b.build().unwrap()
    }

    #[test]
    fn model_dimensions() {
        let i = inst();
        let m = IpModel::build(&i, 0.0);
        // vars: 2*3 x + 3 y + 1 t = 10.
        assert_eq!(m.n_vars(), 10);
        // rows: 2 assign + (3 machines * 2 dims * 2) cap/peak + 6 vac + 1 quota = 21.
        assert_eq!(m.n_constraints(), 2 + 12 + 6 + 1);
    }

    #[test]
    fn initial_placement_is_ip_feasible() {
        let i = inst();
        let m = IpModel::build(&i, 0.0);
        let vars = m.variables_from_placement(&i, &i.initial);
        assert!(m.check(&vars).is_empty());
    }

    #[test]
    fn objective_matches_cluster_objective() {
        let i = inst();
        let lambda = 0.5;
        let m = IpModel::build(&i, lambda);
        let mut asg = Assignment::from_initial(&i);
        asg.move_shard(&i, ShardId(0), rex_cluster::MachineId(1));
        let vars = m.variables_from_placement(&i, asg.placement());
        let obj = rex_cluster::Objective {
            kind: rex_cluster::ObjectiveKind::PeakLoad,
            lambda,
        };
        let expect = obj.value(&i, &asg, &i.initial);
        assert!((m.objective_value(&vars) - expect).abs() < 1e-9);
    }

    #[test]
    fn vacancy_shortfall_violates_quota() {
        let i = inst(); // k_return = 1
        let m = IpModel::build(&i, 0.0);
        let mut asg = Assignment::from_initial(&i);
        // Occupy the exchange machine while keeping m0 and m1 occupied:
        // impossible with 2 shards on 2 machines... move shard 0 onto the
        // exchange machine vacates m0, so instead check the violation path
        // with a hand-built variable vector.
        asg.move_shard(&i, ShardId(0), rex_cluster::MachineId(2));
        let mut vars = m.variables_from_placement(&i, asg.placement());
        // Force y_m0 to 0 (pretend no machine is returnable).
        vars[m.y(0)] = 0.0;
        let violations = m.check(&vars);
        assert!(
            violations.iter().any(|v| v.constraint == "quota"),
            "{violations:?}"
        );
    }

    #[test]
    fn overload_violates_capacity() {
        // Put both shards on m0 with a capacity too small for the pair.
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        b.shard(&[7.0], 1.0, m0);
        b.shard(&[6.0], 1.0, m1);
        let i = b.build().unwrap();
        let m = IpModel::build(&i, 0.0);
        let vars =
            m.variables_from_placement(&i, &[rex_cluster::MachineId(0), rex_cluster::MachineId(0)]);
        let violations = m.check(&vars);
        assert!(violations
            .iter()
            .any(|v| v.constraint.starts_with("cap[m0")));
    }

    #[test]
    fn occupied_machine_cannot_be_marked_vacant() {
        let i = inst();
        let m = IpModel::build(&i, 0.0);
        let mut vars = m.variables_from_placement(&i, &i.initial);
        vars[m.y(0)] = 1.0; // m0 hosts shard 0 — contradiction
        let violations = m.check(&vars);
        assert!(violations
            .iter()
            .any(|v| v.constraint.starts_with("vac[s0,m0")));
    }

    #[test]
    fn understated_t_violates_peak_linkage() {
        let i = inst();
        let m = IpModel::build(&i, 0.0);
        let mut vars = m.variables_from_placement(&i, &i.initial);
        vars[m.t()] = 0.0;
        let violations = m.check(&vars);
        assert!(violations.iter().any(|v| v.constraint.starts_with("peak[")));
    }

    #[test]
    fn lp_output_mentions_all_sections() {
        let i = inst();
        let m = IpModel::build(&i, 0.1);
        let lp = m.to_lp_string();
        assert!(lp.contains("Minimize"));
        assert!(lp.contains("Subject To"));
        assert!(lp.contains("Binaries"));
        assert!(lp.contains("quota"));
        assert!(lp.ends_with("End\n"));
    }
}
