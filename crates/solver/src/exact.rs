//! Exact branch-and-bound over shard placements.
//!
//! Exhaustive DFS with three accelerations that keep tiny instances (≤ ~14
//! shards × ~6 machines) tractable:
//!
//! * **bound pruning** — a node's completion can never beat
//!   `max(partial peak, fractional lower bound) + λ·cost-so-far`,
//! * **capacity-class symmetry breaking** — when a shard opens a fresh
//!   machine, only the first empty machine of each capacity class is tried
//!   (identical machines are interchangeable),
//! * **warm start** — the initial placement seeds the incumbent, so the
//!   search begins with a real bound instead of `∞`.
//!
//! Like the paper's IP, this optimizes the *target* placement; transient
//! schedulability is the migration planner's job.

use crate::bounds::{capacity_classes, peak_lower_bound};
use rex_cluster::{Assignment, ClusterError, Instance, MachineId, ResourceVec, ShardId};
use std::time::{Duration, Instant};

/// Exact-solver knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Node budget; the search returns the incumbent (not proven optimal)
    /// when exceeded.
    pub max_nodes: u64,
    /// Optional wall-clock budget.
    pub time_limit: Option<Duration>,
    /// Migration-cost weight (matching [`rex_cluster::Objective::lambda`]).
    pub lambda: f64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            max_nodes: 5_000_000,
            time_limit: None,
            lambda: 0.0,
        }
    }
}

/// Result of an exact solve.
#[derive(Clone, Debug)]
pub struct ExactResult {
    /// Best placement found.
    pub placement: Vec<MachineId>,
    /// Its full objective value (`peak + λ·normalized cost`).
    pub objective: f64,
    /// Its peak load.
    pub peak: f64,
    /// Nodes explored.
    pub nodes: u64,
    /// True when the search ran to completion (the result is optimal).
    pub proven_optimal: bool,
}

struct Search<'a> {
    inst: &'a Instance,
    cfg: ExactConfig,
    order: Vec<ShardId>,
    classes: Vec<usize>,
    total_cost: f64,
    global_lb: f64,
    start: Instant,
    // Mutable search state.
    usage: Vec<ResourceVec>,
    counts: Vec<u32>,
    loads: Vec<f64>,
    occupied: usize,
    moved_cost: f64,
    placement: Vec<MachineId>,
    // Incumbent.
    best_placement: Vec<MachineId>,
    best_obj: f64,
    nodes: u64,
    truncated: bool,
}

/// Solves the instance exactly (within the configured budgets).
pub fn branch_and_bound(inst: &Instance, cfg: &ExactConfig) -> Result<ExactResult, ClusterError> {
    inst.validate()?;

    // Largest-first branching order.
    let mut order: Vec<ShardId> = (0..inst.n_shards()).map(ShardId::from).collect();
    order.sort_by(|&a, &b| {
        inst.demand(b)
            .norm()
            .partial_cmp(&inst.demand(a).norm())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    // Warm start from the initial placement.
    let initial = Assignment::from_initial(inst);
    let initial_obj = initial.peak_load(inst); // cost term is zero

    let mut search = Search {
        inst,
        cfg: *cfg,
        order,
        classes: capacity_classes(inst),
        total_cost: inst.shards.iter().map(|s| s.move_cost).sum(),
        global_lb: peak_lower_bound(inst),
        start: Instant::now(),
        usage: vec![ResourceVec::zero(inst.dims); inst.n_machines()],
        counts: vec![0; inst.n_machines()],
        loads: vec![0.0; inst.n_machines()],
        occupied: 0,
        moved_cost: 0.0,
        placement: vec![MachineId(0); inst.n_shards()],
        best_placement: inst.initial.clone(),
        best_obj: initial_obj,
        nodes: 0,
        truncated: false,
    };
    search.dfs(0, 0.0);

    let best = Assignment::from_placement(inst, search.best_placement.clone())?;
    Ok(ExactResult {
        peak: best.peak_load(inst),
        objective: search.best_obj,
        placement: search.best_placement,
        nodes: search.nodes,
        proven_optimal: !search.truncated,
    })
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize, partial_peak: f64) {
        self.nodes += 1;
        if self.nodes > self.cfg.max_nodes {
            self.truncated = true;
            return;
        }
        if self.nodes.is_multiple_of(4096) {
            if let Some(limit) = self.cfg.time_limit {
                if self.start.elapsed() >= limit {
                    self.truncated = true;
                    return;
                }
            }
        }

        if depth == self.order.len() {
            let obj = partial_peak + self.cost_term(self.moved_cost);
            if obj < self.best_obj - 1e-12 {
                self.best_obj = obj;
                self.best_placement = self.placement.clone();
            }
            return;
        }

        // Bound: the completion's peak is at least the larger of the
        // current partial peak and the fractional bound, and its cost term
        // at least the cost already incurred.
        let lb = partial_peak.max(self.global_lb) + self.cost_term(self.moved_cost);
        if lb >= self.best_obj - 1e-12 {
            return;
        }

        let s = self.order[depth];
        let demand = *self.inst.demand(s);
        let m_n = self.inst.n_machines();
        let max_occupied = m_n - self.inst.k_return;

        // Candidate machines, cheapest resulting load first (finds strong
        // incumbents early). Symmetry: only the first empty machine per
        // capacity class.
        let mut cands: Vec<(f64, usize)> = Vec::with_capacity(m_n);
        let mut seen_empty_class = [false; 64];
        for m in 0..m_n {
            let cap = &self.inst.machines[m].capacity;
            if !self.usage[m].fits_after_add(&demand, cap) {
                continue;
            }
            if self.counts[m] == 0 {
                if self.occupied + 1 > max_occupied {
                    continue; // would leave too few vacancies
                }
                let class = self.classes[m].min(63);
                if seen_empty_class[class] {
                    continue; // interchangeable with an earlier empty machine
                }
                seen_empty_class[class] = true;
            }
            let mut u = self.usage[m];
            u += &demand;
            cands.push((u.max_ratio(cap), m));
        }
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        for (load_after, m) in cands {
            if self.truncated {
                return;
            }
            let new_peak = partial_peak.max(load_after);
            let moved = MachineId::from(m) != self.inst.initial[s.idx()];
            let add_cost = if moved {
                self.inst.shards[s.idx()].move_cost
            } else {
                0.0
            };
            // Child bound before descending.
            if new_peak.max(self.global_lb) + self.cost_term(self.moved_cost + add_cost)
                >= self.best_obj - 1e-12
            {
                continue;
            }

            // Apply.
            let old_load = self.loads[m];
            self.usage[m] += &demand;
            self.loads[m] = load_after;
            self.counts[m] += 1;
            if self.counts[m] == 1 {
                self.occupied += 1;
            }
            self.moved_cost += add_cost;
            self.placement[s.idx()] = MachineId::from(m);

            self.dfs(depth + 1, new_peak);

            // Undo.
            self.usage[m].saturating_sub_assign(&demand);
            self.loads[m] = old_load;
            self.counts[m] -= 1;
            if self.counts[m] == 0 {
                self.occupied -= 1;
            }
            self.moved_cost -= add_cost;
        }
    }

    #[inline]
    fn cost_term(&self, moved_cost: f64) -> f64 {
        if self.cfg.lambda > 0.0 && self.total_cost > 0.0 {
            self.cfg.lambda * moved_cost / self.total_cost
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::InstanceBuilder;

    fn simple(shards: &[f64], caps: &[f64], k_return: usize) -> Instance {
        // Places shards greedily for a feasible initial placement.
        let mut b = InstanceBuilder::new(1).k_return(k_return);
        let machines: Vec<MachineId> = caps.iter().map(|&c| b.machine(&[c])).collect();
        let mut usage = vec![0.0; caps.len()];
        for &d in shards {
            let host = (0..caps.len())
                .find(|&m| usage[m] + d <= caps[m])
                .expect("test shards must fit greedily");
            usage[host] += d;
            b.shard(&[d], 1.0, machines[host]);
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_known_optimum() {
        // {4,3,3,2} over two 10-machines: optimal peak 0.6 (6|6).
        let inst = simple(&[4.0, 3.0, 3.0, 2.0], &[10.0, 10.0], 0);
        let r = branch_and_bound(&inst, &ExactConfig::default()).unwrap();
        assert!(r.proven_optimal);
        assert!((r.peak - 0.6).abs() < 1e-9, "peak={}", r.peak);
    }

    #[test]
    fn respects_vacancy_quota() {
        // Three machines but one must end vacant: optimum packs onto two.
        let inst = simple(&[4.0, 4.0, 4.0], &[10.0, 10.0, 10.0], 1);
        let r = branch_and_bound(&inst, &ExactConfig::default()).unwrap();
        assert!(r.proven_optimal);
        let asg = Assignment::from_placement(&inst, r.placement.clone()).unwrap();
        assert!(asg.vacant_count() >= 1);
        assert!(
            (r.peak - 0.8).abs() < 1e-9,
            "8|4|vacant → peak 0.8, got {}",
            r.peak
        );
    }

    #[test]
    fn matches_brute_force_on_random_tiny_instances() {
        use rand::prelude::*;
        for seed in 0..12u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n_m = rng.random_range(2..4);
            let n_s = rng.random_range(2..7);
            let caps: Vec<f64> = (0..n_m).map(|_| rng.random_range(8.0..14.0)).collect();
            let shards: Vec<f64> = (0..n_s).map(|_| rng.random_range(0.5..3.5)).collect();
            let inst = simple(&shards, &caps, 0);

            let r = branch_and_bound(&inst, &ExactConfig::default()).unwrap();
            assert!(r.proven_optimal);

            // Brute force over all machine^shard placements.
            let mut best = f64::INFINITY;
            let total = (n_m as u64).pow(n_s as u32);
            for code in 0..total {
                let mut c = code;
                let mut usage = vec![0.0; n_m];
                let mut ok = true;
                #[allow(clippy::needless_range_loop)] // s indexes two arrays
                for s in 0..n_s {
                    let m = (c % n_m as u64) as usize;
                    c /= n_m as u64;
                    usage[m] += shards[s];
                    if usage[m] > caps[m] + 1e-9 {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let peak = usage
                        .iter()
                        .zip(&caps)
                        .map(|(u, c)| u / c)
                        .fold(0.0f64, f64::max);
                    best = best.min(peak);
                }
            }
            assert!(
                (r.peak - best).abs() < 1e-9,
                "seed {seed}: b&b {} vs brute {best}",
                r.peak
            );
        }
    }

    #[test]
    fn symmetry_breaking_keeps_node_count_sane() {
        // 8 identical machines, 8 identical shards: without symmetry
        // breaking this explodes; with it the count stays small.
        let inst = simple(&[1.0; 8], &[10.0; 8], 0);
        let r = branch_and_bound(&inst, &ExactConfig::default()).unwrap();
        assert!(r.proven_optimal);
        assert!((r.peak - 0.1).abs() < 1e-9);
        assert!(r.nodes < 200_000, "nodes = {}", r.nodes);
    }

    #[test]
    fn lambda_tradeoff() {
        // Rebalancing helps peak but costs moves; with a huge λ the
        // optimum is the initial placement.
        let inst = simple(&[4.0, 4.0], &[10.0, 10.0], 0);
        // Initial: both on m0 (greedy) → peak 0.8. Optimum λ=0: 0.4.
        let free = branch_and_bound(&inst, &ExactConfig::default()).unwrap();
        assert!((free.peak - 0.4).abs() < 1e-9);
        let taxed = branch_and_bound(
            &inst,
            &ExactConfig {
                lambda: 100.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(taxed.placement, inst.initial);
        assert!((taxed.peak - 0.8).abs() < 1e-9);
    }

    #[test]
    fn node_budget_truncates_gracefully() {
        let inst = simple(&[1.0; 10], &[10.0; 4], 0);
        let r = branch_and_bound(
            &inst,
            &ExactConfig {
                max_nodes: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.proven_optimal);
        // Still returns a feasible placement (the warm start at worst).
        let asg = Assignment::from_placement(&inst, r.placement).unwrap();
        assert!(asg.is_capacity_feasible(&inst));
    }

    #[test]
    fn never_worse_than_initial() {
        let inst = simple(&[3.0, 2.0, 2.0, 1.0], &[6.0, 6.0, 6.0], 1);
        let initial_peak = Assignment::from_initial(&inst).peak_load(&inst);
        let r = branch_and_bound(&inst, &ExactConfig::default()).unwrap();
        assert!(r.objective <= initial_peak + 1e-12);
    }
}
