//! Property tests tying the exact solver, the bounds, and the IP model
//! together on random tiny instances.

use proptest::prelude::*;
use rex_cluster::{Assignment, Instance, InstanceBuilder, MachineId};
use rex_solver::{branch_and_bound, peak_lower_bound, ExactConfig, IpModel};

/// Random tiny instance: 2–4 machines, 3–9 shards, optional vacancy quota.
fn build(seed: u64, n_m: usize, n_s: usize, k: usize) -> Option<Instance> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new(1).k_return(k).label("prop");
    let caps: Vec<f64> = (0..n_m).map(|_| rng.random_range(8.0..14.0)).collect();
    let machines: Vec<MachineId> = caps.iter().map(|&c| b.machine(&[c])).collect();
    let mut usage = vec![0.0; n_m];
    // Keep (n_m - k) machines usable for the initial packing so the quota
    // is satisfiable.
    let usable = n_m - k;
    for _ in 0..n_s {
        let d = rng.random_range(0.5..3.0);
        let host = (0..usable).find(|&m| usage[m] + d <= caps[m])?;
        usage[host] += d;
        b.shard(&[d], 1.0, machines[host]);
    }
    b.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exact optimum respects the fractional bound and never exceeds
    /// the warm start; its placement is IP-feasible and quota-satisfying.
    #[test]
    fn exact_solver_contract(
        seed in any::<u64>(),
        n_m in 2usize..5,
        n_s in 3usize..10,
        k in 0usize..2,
    ) {
        prop_assume!(k < n_m);
        let Some(inst) = build(seed, n_m, n_s, k) else { return Ok(()) };
        let res = branch_and_bound(&inst, &ExactConfig::default()).unwrap();
        let lb = peak_lower_bound(&inst);
        prop_assert!(res.peak + 1e-9 >= lb, "peak {} below LB {}", res.peak, lb);
        let initial_peak = Assignment::from_initial(&inst).peak_load(&inst);
        prop_assert!(res.objective <= initial_peak + 1e-9);

        let asg = Assignment::from_placement(&inst, res.placement.clone()).unwrap();
        prop_assert!(asg.is_capacity_feasible(&inst));
        prop_assert!(asg.vacant_count() >= inst.k_return);

        let model = IpModel::build(&inst, 0.0);
        let vars = model.variables_from_placement(&inst, &res.placement);
        prop_assert!(model.check(&vars).is_empty());
        // The model's objective (with λ=0) equals the reported peak.
        prop_assert!((model.objective_value(&vars) - res.peak).abs() < 1e-9);
    }

    /// With λ large enough, the optimum is exactly the initial placement.
    #[test]
    fn huge_lambda_freezes_the_placement(seed in any::<u64>()) {
        let Some(inst) = build(seed, 3, 6, 0) else { return Ok(()) };
        let res = branch_and_bound(
            &inst,
            &ExactConfig { lambda: 1_000.0, ..Default::default() },
        )
        .unwrap();
        prop_assert!(res.proven_optimal);
        prop_assert_eq!(res.placement, inst.initial);
    }

    /// Shrinking the node budget only ever worsens (or preserves) the
    /// result, never breaks feasibility.
    #[test]
    fn budget_monotonicity(seed in any::<u64>()) {
        let Some(inst) = build(seed, 3, 8, 1) else { return Ok(()) };
        let full = branch_and_bound(&inst, &ExactConfig::default()).unwrap();
        let tiny = branch_and_bound(
            &inst,
            &ExactConfig { max_nodes: 50, ..Default::default() },
        )
        .unwrap();
        prop_assert!(full.objective <= tiny.objective + 1e-12);
        let asg = Assignment::from_placement(&inst, tiny.placement).unwrap();
        prop_assert!(asg.is_capacity_feasible(&inst));
    }
}
