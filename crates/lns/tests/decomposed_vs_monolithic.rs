//! Differential suite: the cooperative decomposed solver vs the monolithic
//! search on the same instances.
//!
//! Three contracts:
//! 1. **Constraints** — the decomposed result satisfies everything the
//!    monolithic one does: complete placement, per-machine capacity, the
//!    `k_return` vacancy quota, and a verified transient-feasible
//!    migration schedule.
//! 2. **Quality** — final peak within 1% of the monolithic solve at the
//!    same iteration budget.
//! 3. **Determinism** — byte-identical output for `REX_THREADS` ∈
//!    {1, 2, 8} (the thread-count override is process-global, so every
//!    thread-sensitive check lives in one `#[test]`), and rex-obs
//!    recording never perturbs the outcome.

use rex_cluster::{verify_schedule, Objective, ObjectiveKind};
use rex_core::{solve, solve_traced, SraConfig, SraResult};
use rex_obs::Recorder;
use rex_workload::synthetic::{generate, DemandFamily, Placement, SynthConfig};

fn instance(machines: usize, shards: usize, seed: u64) -> rex_cluster::Instance {
    generate(&SynthConfig {
        n_machines: machines,
        n_exchange: (machines / 8).max(1),
        n_shards: shards,
        stringency: 0.8,
        family: DemandFamily::Correlated,
        placement: Placement::Hotspot(0.4),
        seed,
        ..Default::default()
    })
    .expect("generate")
}

fn cfg(partitions: usize) -> SraConfig {
    SraConfig {
        iters: 1_500,
        partitions,
        seed: 23,
        objective: Objective::pure(ObjectiveKind::PeakLoad),
        ..Default::default()
    }
}

fn check_constraints(inst: &rex_cluster::Instance, res: &SraResult) {
    res.assignment
        .check_target(inst)
        .expect("target constraints");
    assert!(res.assignment.vacant_count() >= inst.k_return);
    assert_eq!(res.returned_machines.len(), inst.k_return);
    verify_schedule(inst, &inst.initial, res.assignment.placement(), &res.plan)
        .expect("schedule must stay transient-feasible");
}

#[test]
fn decomposed_matches_monolithic_and_is_thread_count_invariant() {
    let inst = instance(48, 480, 5);

    let mono = solve(&inst, &cfg(0)).expect("monolithic solve");
    check_constraints(&inst, &mono);

    let deco = solve(&inst, &cfg(8)).expect("decomposed solve");
    check_constraints(&inst, &deco);

    // Quality bound: within 1% of the monolithic peak.
    assert!(
        deco.final_report.peak <= mono.final_report.peak * 1.01 + 1e-9,
        "decomposed peak {} vs monolithic {}",
        deco.final_report.peak,
        mono.final_report.peak
    );
    // Both must actually improve the hotspot placement.
    assert!(deco.final_report.peak < deco.initial_report.peak);

    // Thread-count invariance: byte-identical placement, objective,
    // iteration count, and trace for 1, 2, and 8 threads.
    let reference_trace = {
        let mut rec = Recorder::active();
        let r = solve_traced(&inst, &cfg(8), &[], &mut rec).expect("traced solve");
        assert_eq!(
            r.assignment.placement(),
            deco.assignment.placement(),
            "recording must never perturb the outcome"
        );
        assert_eq!(r.objective_value, deco.objective_value);
        assert_eq!(r.iterations, deco.iterations);
        rec.to_jsonl()
    };
    assert!(!reference_trace.is_empty());
    for threads in [1usize, 2, 8] {
        rayon::set_threads_override(Some(threads));
        let run = solve(&inst, &cfg(8)).expect("solve under override");
        assert_eq!(
            run.assignment.placement(),
            deco.assignment.placement(),
            "placement must be byte-identical at {threads} threads"
        );
        assert_eq!(run.objective_value, deco.objective_value);
        assert_eq!(run.iterations, deco.iterations);

        let mut rec = Recorder::active();
        let traced = solve_traced(&inst, &cfg(8), &[], &mut rec).expect("traced");
        assert_eq!(traced.assignment.placement(), deco.assignment.placement());
        assert_eq!(
            rec.to_jsonl(),
            reference_trace,
            "trace must be byte-identical at {threads} threads"
        );
    }
    rayon::set_threads_override(None);

    // Hierarchical path (depth > 1): same constraint set, ≤1% of the
    // monolithic peak, and byte-identical across thread counts. This
    // lives in the same #[test] because the thread override is
    // process-global.
    let hcfg = SraConfig { depth: 2, ..cfg(4) };
    let hier = solve(&inst, &hcfg).expect("hierarchical solve");
    check_constraints(&inst, &hier);
    assert!(
        hier.final_report.peak <= mono.final_report.peak * 1.01 + 1e-9,
        "hierarchical peak {} vs monolithic {}",
        hier.final_report.peak,
        mono.final_report.peak
    );
    assert!(hier.final_report.peak < hier.initial_report.peak);
    for threads in [1usize, 8] {
        rayon::set_threads_override(Some(threads));
        let run = solve(&inst, &hcfg).expect("hierarchical under override");
        assert_eq!(
            run.assignment.placement(),
            hier.assignment.placement(),
            "hierarchical placement must be byte-identical at {threads} threads"
        );
        assert_eq!(run.objective_value, hier.objective_value);
        assert_eq!(run.iterations, hier.iterations);
    }
    rayon::set_threads_override(None);
}

mod prop {
    use super::*;
    use proptest::prelude::*;
    use rex_cluster::{
        partition_fleet, partition_subfleet, Assignment, MachineId, PartitionSpec, ShardId,
    };
    use std::collections::HashSet;

    /// Recursively splits a node exactly like the hierarchical solver
    /// (same stop rule: split while levels remain and every child can get
    /// two machines) and checks, at every level, that the children
    /// partition the parent's machines and shards exactly and that the
    /// children's vacancy quotas sum to the parent's.
    fn check_tree(
        inst: &rex_cluster::Instance,
        placement: &[MachineId],
        loads: &[f64],
        node: &PartitionSpec,
        level: usize,
        depth: usize,
        k: usize,
    ) -> Result<(), TestCaseError> {
        if level >= depth || k < 2 || node.machines.len() < 2 * k {
            return Ok(());
        }
        let children = partition_subfleet(
            inst,
            placement,
            loads,
            &node.machines,
            &node.shards,
            k,
            node.vacancy_quota,
            &[],
        );
        let mut mseen = HashSet::new();
        let mut sseen = HashSet::new();
        for c in &children {
            for m in &c.machines {
                prop_assert!(mseen.insert(*m), "machine {m} in two children");
                prop_assert!(node.machines.contains(m), "machine {m} not in parent");
            }
            for s in &c.shards {
                prop_assert!(sseen.insert(*s), "shard {s} in two children");
                prop_assert!(
                    c.machines.contains(&placement[s.idx()]),
                    "shard {s} does not follow its machine"
                );
            }
        }
        prop_assert_eq!(mseen.len(), node.machines.len(), "machines lost in split");
        prop_assert_eq!(sseen.len(), node.shards.len(), "shards lost in split");
        let q: usize = children.iter().map(|c| c.vacancy_quota).sum();
        prop_assert_eq!(q, node.vacancy_quota, "vacancy quota not conserved");
        for c in &children {
            check_tree(inst, placement, loads, c, level + 1, depth, k)?;
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every machine lands in exactly one partition and every shard
        /// follows its hosting machine, for arbitrary fleet shapes and k.
        #[test]
        fn partition_covers_every_machine_exactly_once(
            machines in 6usize..40,
            shards_per in 2usize..12,
            k in 1usize..10,
            seed in 0u64..1_000,
        ) {
            let inst = instance(machines, machines * shards_per, seed);
            let asg = Assignment::from_initial(&inst);
            let loads = asg.loads(&inst);
            let parts = partition_fleet(&inst, &inst.initial, &loads, k, inst.k_return, &[]);

            let mut machine_seen = vec![0usize; inst.n_machines()];
            let mut shard_seen = vec![0usize; inst.n_shards()];
            for p in &parts {
                for m in &p.machines {
                    machine_seen[m.idx()] += 1;
                }
                for s in &p.shards {
                    shard_seen[s.idx()] += 1;
                    prop_assert!(p.machines.contains(&inst.initial[s.idx()]));
                }
            }
            prop_assert!(machine_seen.iter().all(|&c| c == 1));
            prop_assert!(shard_seen.iter().all(|&c| c == 1));
            let quota: usize = parts.iter().map(|p| p.vacancy_quota).sum();
            prop_assert_eq!(quota, inst.k_return);
        }

        /// End-to-end: the decomposed solve (partition rounds + boundary
        /// repair) always produces a verified transient-feasible schedule
        /// — boundary repair never ships a target that violates transient
        /// capacity.
        #[test]
        fn boundary_repair_respects_transient_capacity(
            machines in 10usize..28,
            seed in 0u64..50,
        ) {
            let inst = instance(machines, machines * 8, seed);
            let res = solve(
                &inst,
                &SraConfig {
                    iters: 400,
                    partitions: 4,
                    seed,
                    objective: Objective::pure(ObjectiveKind::PeakLoad),
                    ..Default::default()
                },
            )
            .expect("decomposed solve");
            // Independent re-verification with the step simulator: every
            // batch must respect (1+α)-inflated source/target usage.
            verify_schedule(&inst, &inst.initial, res.assignment.placement(), &res.plan)
                .expect("transient-feasible schedule");
            prop_assert!(res.assignment.vacant_count() >= inst.k_return);
        }

        /// The depth-d partition tree covers every machine and shard of
        /// every node exactly once in its children, at every level, and
        /// vacancy quotas are conserved all the way down.
        #[test]
        fn hierarchical_tree_covers_and_conserves_quota(
            machines in 12usize..48,
            shards_per in 2usize..10,
            k in 2usize..5,
            depth in 2usize..5,
            seed in 0u64..500,
        ) {
            let inst = instance(machines, machines * shards_per, seed);
            let asg = Assignment::from_initial(&inst);
            let loads = asg.loads(&inst);
            let root = PartitionSpec {
                machines: (0..inst.n_machines()).map(MachineId::from).collect(),
                shards: (0..inst.n_shards()).map(ShardId::from).collect(),
                vacancy_quota: inst.k_return,
            };
            check_tree(&inst, &inst.initial, &loads, &root, 0, depth, k)?;
        }
    }

    proptest! {
        // Each case runs two full solves — keep the count modest.
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Hierarchical (depth 2) and flat decomposed solves agree within
        /// a 1% quality band at the same iteration budget.
        #[test]
        fn hierarchical_matches_flat_within_one_percent(
            machines in 20usize..36,
            seed in 0u64..30,
        ) {
            let inst = instance(machines, machines * 8, seed);
            let base = SraConfig {
                iters: 600,
                partitions: 4,
                seed,
                objective: Objective::pure(ObjectiveKind::PeakLoad),
                ..Default::default()
            };
            let flat = solve(&inst, &base).expect("flat solve");
            let hier = solve(&inst, &SraConfig { depth: 2, ..base }).expect("hierarchical solve");
            prop_assert!(
                hier.final_report.peak <= flat.final_report.peak * 1.01 + 1e-9,
                "hierarchical peak {} vs flat {}",
                hier.final_report.peak,
                flat.final_report.peak
            );
        }
    }
}
