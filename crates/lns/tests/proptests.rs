//! Property-based tests of the ALNS engine's contract, driven through the
//! toy partitioning problem over the unified `Engine<InPlaceModel>` spine.

use proptest::prelude::*;
use rex_lns::toy::{
    GreedyInsertInPlace, PartitionProblem, RandomRemoveInPlace, WorstBinRemoveInPlace,
};
use rex_lns::{
    Acceptance, DestroyInPlace, Engine, HillClimb, LnsConfig, LnsProblem, RecordToRecord,
    RepairInPlace, SearchOutcome, SimulatedAnnealing,
};

fn run_engine(
    problem: &PartitionProblem,
    acceptance: Box<dyn Acceptance>,
    iters: u64,
    initial: Vec<usize>,
    seed: u64,
) -> SearchOutcome<Vec<usize>> {
    Engine::in_place(
        problem,
        initial,
        vec![
            Box::new(RandomRemoveInPlace) as Box<dyn DestroyInPlace<PartitionProblem>>,
            Box::new(WorstBinRemoveInPlace),
        ],
        vec![Box::new(GreedyInsertInPlace) as Box<dyn RepairInPlace<PartitionProblem>>],
        acceptance,
        LnsConfig {
            max_iters: iters,
            log_trajectory: true,
            ..Default::default()
        },
    )
    .run(seed)
}

fn acceptance_for(kind: u8, iters: u64) -> Box<dyn Acceptance> {
    match kind % 3 {
        0 => Box::new(HillClimb),
        1 => Box::new(SimulatedAnnealing::for_normalized_loads(iters as usize)),
        _ => Box::new(RecordToRecord::new(0.02)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The returned best is feasible, never worse than the start, and its
    /// objective matches a re-evaluation.
    #[test]
    fn engine_contract(
        n in 4usize..40,
        bins in 2usize..6,
        seed in any::<u64>(),
        kind in any::<u8>(),
    ) {
        let problem = PartitionProblem::random(n, bins, seed);
        let initial = problem.all_in_first_bin();
        let f0 = problem.objective(&initial);
        let iters = 300u64;
        let out = run_engine(&problem, acceptance_for(kind, iters), iters, initial, seed ^ 1);
        prop_assert!(problem.is_feasible(&out.best));
        prop_assert!(out.best_objective <= f0 + 1e-12);
        prop_assert!((problem.objective(&out.best) - out.best_objective).abs() < 1e-9);
    }

    /// Iteration accounting: every iteration lands in exactly one stats
    /// bucket, and operator usage counts sum to the iteration count.
    #[test]
    fn stats_partition_iterations(n in 4usize..30, seed in any::<u64>()) {
        let problem = PartitionProblem::random(n, 3, seed);
        let iters = 200u64;
        let out = run_engine(
            &problem,
            Box::new(HillClimb),
            iters,
            problem.all_in_first_bin(),
            seed,
        );
        let s = &out.stats;
        prop_assert_eq!(
            s.accepted + s.rejected + s.repair_failures + s.infeasible,
            out.iterations
        );
        let d_uses: u64 = s.destroy_ops.iter().map(|o| o.uses).sum();
        let r_uses: u64 = s.repair_ops.iter().map(|o| o.uses).sum();
        prop_assert_eq!(d_uses, out.iterations);
        prop_assert_eq!(r_uses, out.iterations);
        prop_assert_eq!(s.new_bests, out.trajectory.len().saturating_sub(1) as u64);
    }

    /// The trajectory is strictly decreasing and starts at the initial
    /// objective.
    #[test]
    fn trajectory_monotone(n in 4usize..30, seed in any::<u64>()) {
        let problem = PartitionProblem::random(n, 3, seed);
        let initial = problem.all_in_first_bin();
        let f0 = problem.objective(&initial);
        let out = run_engine(
            &problem,
            Box::new(SimulatedAnnealing::for_normalized_loads(400)),
            400,
            initial,
            seed,
        );
        prop_assert!(!out.trajectory.is_empty());
        prop_assert!((out.trajectory[0].objective - f0).abs() < 1e-12);
        for w in out.trajectory.windows(2) {
            prop_assert!(w[1].objective < w[0].objective);
        }
        prop_assert!(
            (out.trajectory.last().unwrap().objective - out.best_objective).abs() < 1e-12
        );
    }

    /// Same seed → identical run, different seed → (almost always)
    /// different iterate counts or objective; we only assert the equality
    /// direction, which must always hold.
    #[test]
    fn determinism(n in 6usize..24, seed in any::<u64>()) {
        let problem = PartitionProblem::random(n, 3, 9);
        let a = run_engine(
            &problem,
            Box::new(HillClimb),
            150,
            problem.all_in_first_bin(),
            seed,
        );
        let b = run_engine(
            &problem,
            Box::new(HillClimb),
            150,
            problem.all_in_first_bin(),
            seed,
        );
        prop_assert_eq!(a.best_objective, b.best_objective);
        prop_assert_eq!(a.best, b.best);
        prop_assert_eq!(a.stats.accepted, b.stats.accepted);
    }
}
