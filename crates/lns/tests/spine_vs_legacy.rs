//! Differential suite: the unified `Engine<M>` spine vs the clone-based
//! oracle (`CloneOracle`), which preserves the legacy clone-engine edit
//! mechanics — revert by restoring a saved clone, commit by re-cloning —
//! behind the same `EditModel` protocol.
//!
//! The contract proven here is the refactor's safety net: for fixed seeds
//! the production undo-log model and the oracle produce **bit-identical**
//! incumbents, objectives, per-operator stats, trajectories, and rex-obs
//! trace JSONL, on every solver path (monolithic serial, parallel
//! portfolio, cooperative rounds), traced and untraced, for
//! `REX_THREADS ∈ {1, 8}`.
//!
//! One `#[test]` function on purpose: the rayon-shim thread override is
//! process-global.

use rex_lns::toy::{
    GreedyInsertInPlace, PartitionProblem, RandomRemoveInPlace, WorstBinRemoveInPlace,
};
use rex_lns::{
    cooperative_round, portfolio_search_recorded, round_seed, Acceptance, CloneOracle,
    DestroyInPlace, EditModel, Engine, HillClimb, InPlaceModel, LnsConfig, PortfolioConfig,
    RepairInPlace, RoundJob, SearchOutcome, SimulatedAnnealing,
};
use rex_obs::Recorder;

const ITERS: u64 = 900;
const SEED: u64 = 4242;

fn destroys() -> Vec<Box<dyn DestroyInPlace<PartitionProblem>>> {
    vec![
        Box::new(RandomRemoveInPlace),
        Box::new(WorstBinRemoveInPlace),
    ]
}

fn repairs() -> Vec<Box<dyn RepairInPlace<PartitionProblem>>> {
    vec![Box::new(GreedyInsertInPlace)]
}

fn acceptance() -> Box<dyn Acceptance> {
    Box::new(SimulatedAnnealing::for_normalized_loads(ITERS as usize))
}

fn engine_cfg() -> LnsConfig {
    LnsConfig {
        max_iters: ITERS,
        log_trajectory: true,
        ..Default::default()
    }
}

fn in_place(problem: &PartitionProblem, start: Vec<usize>) -> InPlaceModel<'_, PartitionProblem> {
    InPlaceModel::new(problem, start, destroys(), repairs())
}

fn oracle(problem: &PartitionProblem, start: Vec<usize>) -> CloneOracle<'_, PartitionProblem> {
    CloneOracle::new(problem, start, destroys(), repairs())
}

/// Bit-exact comparison of two search outcomes; floats compared by bits,
/// structured stats/trajectory through their `Debug` rendering (both sides
/// are the same types, so any divergence shows up verbatim).
fn assert_outcomes_identical(
    a: &SearchOutcome<Vec<usize>>,
    b: &SearchOutcome<Vec<usize>>,
    label: &str,
) {
    assert_eq!(a.best, b.best, "{label}: incumbent differs");
    assert_eq!(
        a.best_objective.to_bits(),
        b.best_objective.to_bits(),
        "{label}: objective bits differ ({} vs {})",
        a.best_objective,
        b.best_objective
    );
    assert_eq!(
        a.iterations, b.iterations,
        "{label}: iteration count differs"
    );
    assert_eq!(
        format!("{:?}", a.stats),
        format!("{:?}", b.stats),
        "{label}: stats differ"
    );
    // `elapsed_secs` is wall-clock and legitimately differs between runs;
    // the search-relevant trajectory is (iteration, objective).
    let shape = |t: &[rex_lns::TrajectoryPoint]| -> Vec<(u64, u64)> {
        t.iter()
            .map(|p| (p.iteration, p.objective.to_bits()))
            .collect()
    };
    assert_eq!(
        shape(&a.trajectory),
        shape(&b.trajectory),
        "{label}: trajectory differs"
    );
}

fn run_monolithic(
    problem: &PartitionProblem,
    initial: &[usize],
) -> (
    SearchOutcome<Vec<usize>>,
    SearchOutcome<Vec<usize>>,
    String,
    String,
) {
    // Untraced, both models.
    let plain_ip = Engine::new(
        in_place(problem, initial.to_vec()),
        acceptance(),
        engine_cfg(),
    )
    .run(SEED);
    let plain_or = Engine::new(
        oracle(problem, initial.to_vec()),
        acceptance(),
        engine_cfg(),
    )
    .run(SEED);

    // Traced, both models. Tracing must not perturb the search.
    let mut rec_ip = Recorder::active();
    let traced_ip = Engine::new(
        in_place(problem, initial.to_vec()),
        acceptance(),
        engine_cfg(),
    )
    .run_recorded(SEED, &mut rec_ip);
    let mut rec_or = Recorder::active();
    let traced_or = Engine::new(
        oracle(problem, initial.to_vec()),
        acceptance(),
        engine_cfg(),
    )
    .run_recorded(SEED, &mut rec_or);

    assert_outcomes_identical(
        &plain_ip,
        &traced_ip,
        "monolithic in-place traced vs untraced",
    );
    assert_outcomes_identical(
        &plain_or,
        &traced_or,
        "monolithic oracle traced vs untraced",
    );
    assert_outcomes_identical(&plain_ip, &plain_or, "monolithic in-place vs oracle");

    (plain_ip, plain_or, rec_ip.to_jsonl(), rec_or.to_jsonl())
}

fn run_portfolio(
    problem: &PartitionProblem,
    initial: &[usize],
) -> (Vec<usize>, f64, String, String) {
    let cfg = PortfolioConfig {
        workers: 5,
        engine: engine_cfg(),
    };
    let mut rec_ip = Recorder::active();
    let out_ip = portfolio_search_recorded(
        &initial.to_vec(),
        SEED,
        &cfg,
        |start| in_place(problem, start),
        acceptance,
        &mut rec_ip,
    );
    let mut rec_or = Recorder::active();
    let out_or = portfolio_search_recorded(
        &initial.to_vec(),
        SEED,
        &cfg,
        |start| oracle(problem, start),
        acceptance,
        &mut rec_or,
    );
    assert_eq!(out_ip.winner, out_or.winner, "portfolio winner differs");
    assert_eq!(out_ip.best, out_or.best, "portfolio incumbent differs");
    assert_eq!(
        out_ip.best_objective.to_bits(),
        out_or.best_objective.to_bits(),
        "portfolio objective differs"
    );
    assert_eq!(
        format!("{:?}", out_ip.worker_results),
        format!("{:?}", out_or.worker_results),
        "portfolio worker summaries differ"
    );
    (
        out_ip.best,
        out_ip.best_objective,
        rec_ip.to_jsonl(),
        rec_or.to_jsonl(),
    )
}

fn run_cooperative<'p, M>(
    problem: &'p PartitionProblem,
    initials: &[Vec<usize>],
    make_model: impl Fn(&'p PartitionProblem, Vec<usize>) -> M,
) -> Vec<SearchOutcome<Vec<usize>>>
where
    M: EditModel<Solution = Vec<usize>> + Send,
{
    let jobs: Vec<RoundJob<M>> = initials
        .iter()
        .enumerate()
        .map(|(k, start)| RoundJob {
            model: make_model(problem, start.clone()),
            seed: round_seed(SEED, 0, k),
        })
        .collect();
    cooperative_round(jobs, engine_cfg(), || Box::new(HillClimb))
}

#[test]
fn spine_matches_clone_oracle_on_every_path() {
    let problem = PartitionProblem::random(48, 4, 11);
    let initial = problem.all_in_first_bin();
    // Cooperative rounds run several sub-searches from distinct starts, as
    // the decomposed solver does with its partition sub-problems.
    let coop_starts: Vec<Vec<usize>> = (0..3)
        .map(|k| {
            let mut s = initial.clone();
            // Distinct but feasible starts: rotate a few items into bin k+1.
            for item in s.iter_mut().skip(k * 5).take(5) {
                *item = (k + 1) % 4;
            }
            s
        })
        .collect();

    // Reference at the default thread count.
    rayon::set_threads_override(None);
    let (mono_ref, _, mono_jsonl_ref, mono_jsonl_oracle) = run_monolithic(&problem, &initial);
    assert_eq!(
        mono_jsonl_ref, mono_jsonl_oracle,
        "monolithic trace JSONL differs between models"
    );
    assert!(!mono_jsonl_ref.is_empty());

    let (pf_best_ref, pf_obj_ref, pf_jsonl_ref, pf_jsonl_oracle) =
        run_portfolio(&problem, &initial);
    assert_eq!(
        pf_jsonl_ref, pf_jsonl_oracle,
        "portfolio trace JSONL differs between models"
    );

    let coop_ip_ref = run_cooperative(&problem, &coop_starts, |p, s| in_place(p, s));
    let coop_or_ref = run_cooperative(&problem, &coop_starts, |p, s| oracle(p, s));
    assert_eq!(coop_ip_ref.len(), coop_starts.len());
    for (k, (a, b)) in coop_ip_ref.iter().zip(&coop_or_ref).enumerate() {
        assert_outcomes_identical(a, b, &format!("cooperative job {k}"));
    }

    // Replay every path under explicit 1- and 8-thread overrides: results
    // and traces must be byte-identical to the reference.
    for threads in [1usize, 8] {
        rayon::set_threads_override(Some(threads));

        let (mono, mono_or, mono_jsonl, mono_jsonl_or) = run_monolithic(&problem, &initial);
        assert_outcomes_identical(&mono_ref, &mono, &format!("monolithic @{threads}t"));
        assert_outcomes_identical(
            &mono_ref,
            &mono_or,
            &format!("monolithic oracle @{threads}t"),
        );
        assert_eq!(mono_jsonl, mono_jsonl_ref, "monolithic trace @{threads}t");
        assert_eq!(mono_jsonl_or, mono_jsonl_ref, "oracle trace @{threads}t");

        let (pf_best, pf_obj, pf_jsonl, pf_jsonl_or) = run_portfolio(&problem, &initial);
        assert_eq!(pf_best, pf_best_ref, "portfolio incumbent @{threads}t");
        assert_eq!(
            pf_obj.to_bits(),
            pf_obj_ref.to_bits(),
            "portfolio objective @{threads}t"
        );
        assert_eq!(pf_jsonl, pf_jsonl_ref, "portfolio trace @{threads}t");
        assert_eq!(
            pf_jsonl_or, pf_jsonl_ref,
            "portfolio oracle trace @{threads}t"
        );

        let coop_ip = run_cooperative(&problem, &coop_starts, |p, s| in_place(p, s));
        let coop_or = run_cooperative(&problem, &coop_starts, |p, s| oracle(p, s));
        for (k, ((a, b), r)) in coop_ip.iter().zip(&coop_or).zip(&coop_ip_ref).enumerate() {
            assert_outcomes_identical(r, a, &format!("cooperative job {k} @{threads}t"));
            assert_outcomes_identical(r, b, &format!("cooperative oracle job {k} @{threads}t"));
        }
    }

    rayon::set_threads_override(None);
}
