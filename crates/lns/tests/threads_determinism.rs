//! Portfolio determinism is independent of the thread count.
//!
//! The vendored rayon shim exposes `set_threads_override` exactly so this
//! suite can prove the contract DESIGN.md §8 states: the winner, the best
//! objective, and every per-worker summary are a pure function of
//! `(problem, seed, config)` — the number of OS threads that happened to
//! execute the workers is unobservable. Everything runs in ONE `#[test]`
//! function because the override is process-global.

use rex_lns::toy::{
    GreedyInsertInPlace, PartitionProblem, RandomRemoveInPlace, WorstBinRemoveInPlace,
};
use rex_lns::{
    portfolio_search_recorded, CloneOracle, InPlaceModel, LnsConfig, PortfolioConfig,
    PortfolioOutcome, SimulatedAnnealing,
};
use rex_obs::Recorder;

const WORKERS: usize = 6;
const SEED: u64 = 2024;

fn cfg() -> PortfolioConfig {
    PortfolioConfig {
        workers: WORKERS,
        engine: LnsConfig {
            max_iters: 1_200,
            ..Default::default()
        },
    }
}

fn run_in_place(
    problem: &PartitionProblem,
    initial: &[usize],
    rec: &mut Recorder,
) -> PortfolioOutcome<Vec<usize>> {
    portfolio_search_recorded(
        &initial.to_vec(),
        SEED,
        &cfg(),
        |start| {
            InPlaceModel::new(
                problem,
                start,
                vec![
                    Box::new(RandomRemoveInPlace),
                    Box::new(WorstBinRemoveInPlace),
                ],
                vec![Box::new(GreedyInsertInPlace)],
            )
        },
        || Box::new(SimulatedAnnealing::for_normalized_loads(1_200)),
        rec,
    )
}

/// The same portfolio over the clone-based differential oracle: identical
/// operator protocol and RNG consumption, reverts by cloning a saved state
/// instead of replaying the undo log.
fn run_oracle(
    problem: &PartitionProblem,
    initial: &[usize],
    rec: &mut Recorder,
) -> PortfolioOutcome<Vec<usize>> {
    portfolio_search_recorded(
        &initial.to_vec(),
        SEED,
        &cfg(),
        |start| {
            CloneOracle::new(
                problem,
                start,
                vec![
                    Box::new(RandomRemoveInPlace),
                    Box::new(WorstBinRemoveInPlace),
                ],
                vec![Box::new(GreedyInsertInPlace)],
            )
        },
        || Box::new(SimulatedAnnealing::for_normalized_loads(1_200)),
        rec,
    )
}

fn assert_same(a: &PortfolioOutcome<Vec<usize>>, b: &PortfolioOutcome<Vec<usize>>, label: &str) {
    assert_eq!(a.winner, b.winner, "{label}: winner differs");
    assert_eq!(
        a.best_objective, b.best_objective,
        "{label}: objective differs"
    );
    assert_eq!(a.best, b.best, "{label}: best solution differs");
    assert_eq!(
        a.worker_results.len(),
        b.worker_results.len(),
        "{label}: worker count differs"
    );
    for (x, y) in a.worker_results.iter().zip(&b.worker_results) {
        assert_eq!(x.worker, y.worker, "{label}: worker order differs");
        assert_eq!(
            x.objective, y.objective,
            "{label}: worker {} objective differs",
            x.worker
        );
        assert_eq!(
            x.iterations, y.iterations,
            "{label}: worker {} iterations differs",
            x.worker
        );
    }
}

/// One test function on purpose: `set_threads_override` is process-global,
/// and cargo runs `#[test]` functions on concurrent threads by default.
#[test]
fn portfolio_results_and_traces_are_thread_count_independent() {
    let problem = PartitionProblem::random(40, 4, 77);
    let initial = problem.all_in_first_bin();

    // Reference runs with the default thread count.
    rayon::set_threads_override(None);
    let mut rec_ref = Recorder::active();
    let in_place_ref = run_in_place(&problem, &initial, &mut rec_ref);
    let jsonl_ref = rec_ref.to_jsonl();
    assert!(!jsonl_ref.is_empty());

    // The oracle model follows the exact same trajectory as the undo-log
    // model — the spine's differential contract, here at portfolio scope.
    let mut rec_oracle = Recorder::active();
    let oracle_ref = run_oracle(&problem, &initial, &mut rec_oracle);
    assert_same(&in_place_ref, &oracle_ref, "oracle portfolio");
    assert_eq!(
        rec_oracle.to_jsonl(),
        jsonl_ref,
        "oracle trace not byte-identical"
    );

    for threads in [1usize, 2, 3, 8] {
        rayon::set_threads_override(Some(threads));

        let mut rec = Recorder::active();
        let p = run_in_place(&problem, &initial, &mut rec);
        assert_same(
            &in_place_ref,
            &p,
            &format!("in-place portfolio @{threads}t"),
        );
        assert_eq!(
            rec.to_jsonl(),
            jsonl_ref,
            "trace not byte-identical with {threads} threads"
        );

        let mut rec_o = Recorder::active();
        let o = run_oracle(&problem, &initial, &mut rec_o);
        assert_same(&in_place_ref, &o, &format!("oracle portfolio @{threads}t"));
        assert_eq!(
            rec_o.to_jsonl(),
            jsonl_ref,
            "oracle trace not byte-identical with {threads} threads"
        );
    }

    rayon::set_threads_override(None);
}
