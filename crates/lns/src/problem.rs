//! The domain interface implemented by problems solved with this framework.

use rand::rngs::StdRng;

/// A problem solvable by (A)LNS.
///
/// `Solution` is a complete, evaluable state; `Partial` is a destroyed state
/// awaiting repair (typically a solution plus the list of removed elements).
/// The framework never inspects either — it only shuttles them between the
/// operators and compares objective values (lower is better).
pub trait LnsProblem {
    /// A complete candidate solution.
    type Solution: Clone + Send;
    /// A destroyed solution awaiting repair.
    type Partial;

    /// Objective value of a solution; **lower is better**. Must be finite
    /// for feasible solutions.
    fn objective(&self, sol: &Self::Solution) -> f64;

    /// Whether the solution satisfies all hard constraints. The engine only
    /// ever accepts feasible candidates and only ever starts from a feasible
    /// incumbent.
    fn is_feasible(&self, sol: &Self::Solution) -> bool;

    /// Extra gate applied only when a candidate would become the new global
    /// best. A candidate failing this check may still be accepted as the
    /// incumbent (diversification), but is never recorded as the best.
    ///
    /// Use for expensive "deliverability" checks that would be wasteful on
    /// every candidate — SRA uses it to require that the best placement
    /// admit a transient-feasible migration schedule.
    fn accept_best(&self, _sol: &Self::Solution) -> bool {
        true
    }
}

/// A destroy operator: removes part of a solution.
pub trait Destroy<P: LnsProblem>: Send + Sync {
    /// Stable operator name (used in stats, ablation tables, and logs).
    fn name(&self) -> &str;

    /// Destroys `sol` into a partial state. `intensity` in `(0, 1]` scales
    /// how much of the solution should be removed; operators are free to
    /// interpret it (e.g. as a fraction of elements).
    fn destroy(
        &self,
        problem: &P,
        sol: &P::Solution,
        intensity: f64,
        rng: &mut StdRng,
    ) -> P::Partial;
}

/// A repair operator: completes a partial solution.
pub trait Repair<P: LnsProblem>: Send + Sync {
    /// Stable operator name.
    fn name(&self) -> &str;

    /// Repairs a partial state into a complete candidate, or `None` when no
    /// feasible completion was found (the iteration then counts as a failed
    /// proposal and the incumbent is kept).
    fn repair(&self, problem: &P, partial: P::Partial, rng: &mut StdRng) -> Option<P::Solution>;
}

/// The **in-place edit protocol**: an allocation-free alternative hot path.
///
/// The clone-based path ([`Destroy`]/[`Repair`]) copies the incumbent every
/// iteration; on large solutions the copy (and the full objective
/// recomputation that follows) dominates iteration cost. Problems that
/// additionally implement this trait let
/// [`crate::engine::InPlaceEngine`] mutate **one** working [`State`]
/// instead:
///
/// * [`DestroyInPlace`] / [`RepairInPlace`] edit the state directly, with
///   every edit recorded in an undo log inside the state;
/// * on rejection the engine calls [`revert`], which must restore the
///   state **bit-exactly** to the last committed point;
/// * on acceptance the engine calls [`commit`], making the edits the new
///   baseline;
/// * the state carries incremental objective caches (e.g. per-machine
///   loads, a sum-of-squares accumulator) so [`state_objective`] touches
///   only what the burst edited; implementations bound float drift with a
///   periodic full resynchronization in `commit`;
/// * a full solution is cloned out ([`snapshot`]) only when a new global
///   best is recorded — the one remaining allocation on the accept path.
///
/// Semantics must match the clone-based path: `state_objective` /
/// `state_feasible` / `state_accept_best` agree with
/// [`LnsProblem::objective`] / [`LnsProblem::is_feasible`] /
/// [`LnsProblem::accept_best`] evaluated on the state's solution (the
/// objective up to the documented drift bound).
///
/// [`State`]: LnsProblemInPlace::State
/// [`revert`]: LnsProblemInPlace::revert
/// [`commit`]: LnsProblemInPlace::commit
/// [`state_objective`]: LnsProblemInPlace::state_objective
/// [`snapshot`]: LnsProblemInPlace::snapshot
pub trait LnsProblemInPlace: LnsProblem {
    /// Mutable search state: the working solution plus whatever caches make
    /// delta evaluation cheap, plus the undo log.
    type State: Send;

    /// Wraps a solution into a state (one full evaluation; called once per
    /// engine run, not per iteration).
    fn make_state(&self, sol: Self::Solution) -> Self::State;

    /// Objective of the state's current solution, from the caches. Takes
    /// `&mut` so implementations may resolve lazily-maintained caches
    /// (e.g. rescan a stale peak) on demand.
    fn state_objective(&self, state: &mut Self::State) -> f64;

    /// Hard-constraint check of the current (edited, uncommitted) state.
    fn state_feasible(&self, state: &Self::State) -> bool;

    /// The [`LnsProblem::accept_best`] gate, evaluated on the state.
    fn state_accept_best(&self, _state: &Self::State) -> bool {
        true
    }

    /// Clones the current solution out of the state (new bests only).
    fn snapshot(&self, state: &Self::State) -> Self::Solution;

    /// Reverts every edit since the last commit, bit-exactly.
    fn revert(&self, state: &mut Self::State);

    /// Accepts the pending edits as the new baseline. Implementations may
    /// resynchronize incremental caches from scratch here periodically to
    /// bound floating-point drift.
    fn commit(&self, state: &mut Self::State);

    // ---- observability hooks ----------------------------------------------
    // Provided methods (default 0) so the engine can narrate the in-place
    // protocol — destroy size, undo-log depth, cache resynchronizations —
    // without macros and without forcing every problem to care. Only
    // consulted when a recording `rex_obs::Recorder` is attached.

    /// Number of elements currently detached and awaiting repair (the
    /// destroy size of the in-flight burst). Purely informational.
    fn state_destroyed(&self, _state: &Self::State) -> usize {
        0
    }

    /// Number of edits in the undo log since the last commit (the depth a
    /// revert would unwind). Purely informational.
    fn state_undo_depth(&self, _state: &Self::State) -> usize {
        0
    }

    /// Number of full cache resynchronizations performed so far (drift
    /// control; see [`commit`]). Purely informational.
    ///
    /// [`commit`]: LnsProblemInPlace::commit
    fn state_resyncs(&self, _state: &Self::State) -> u64 {
        0
    }
}

/// A destroy operator for the in-place protocol: removes part of the
/// state's solution, recording its edits in the state's undo log.
pub trait DestroyInPlace<P: LnsProblemInPlace>: Send + Sync {
    /// Stable operator name (used in stats, ablation tables, and logs).
    fn name(&self) -> &str;

    /// Destroys part of the state in place. `intensity` as in
    /// [`Destroy::destroy`].
    fn destroy(&self, problem: &P, state: &mut P::State, intensity: f64, rng: &mut StdRng);
}

/// A repair operator for the in-place protocol: completes the state's
/// solution, recording its edits in the state's undo log.
pub trait RepairInPlace<P: LnsProblemInPlace>: Send + Sync {
    /// Stable operator name.
    fn name(&self) -> &str;

    /// Repairs the state in place. Returns `false` when no feasible
    /// completion was found — the engine then reverts the iteration's
    /// edits, so the state may be left partially repaired (but with a
    /// complete undo log).
    fn repair(&self, problem: &P, state: &mut P::State, rng: &mut StdRng) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{
        GreedyInsert, GreedyInsertInPlace, PartitionProblem, RandomRemove, RandomRemoveInPlace,
    };

    // The traits are exercised end-to-end by engine tests; here we only
    // check object safety in the form the engine uses (trait objects).
    #[test]
    fn operators_are_object_safe() {
        let destroys: Vec<Box<dyn Destroy<PartitionProblem>>> = vec![Box::new(RandomRemove)];
        let repairs: Vec<Box<dyn Repair<PartitionProblem>>> = vec![Box::new(GreedyInsert)];
        assert_eq!(destroys[0].name(), "random-remove");
        assert_eq!(repairs[0].name(), "greedy-insert");
    }

    #[test]
    fn in_place_operators_are_object_safe() {
        let destroys: Vec<Box<dyn DestroyInPlace<PartitionProblem>>> =
            vec![Box::new(RandomRemoveInPlace)];
        let repairs: Vec<Box<dyn RepairInPlace<PartitionProblem>>> =
            vec![Box::new(GreedyInsertInPlace)];
        assert_eq!(destroys[0].name(), "random-remove");
        assert_eq!(repairs[0].name(), "greedy-insert");
    }
}
