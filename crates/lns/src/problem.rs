//! The domain interface implemented by problems solved with this framework.

use rand::rngs::StdRng;

/// A problem solvable by (A)LNS.
///
/// `Solution` is a complete, evaluable state; `Partial` is a destroyed state
/// awaiting repair (typically a solution plus the list of removed elements).
/// The framework never inspects either — it only shuttles them between the
/// operators and compares objective values (lower is better).
pub trait LnsProblem {
    /// A complete candidate solution.
    type Solution: Clone + Send;
    /// A destroyed solution awaiting repair.
    type Partial;

    /// Objective value of a solution; **lower is better**. Must be finite
    /// for feasible solutions.
    fn objective(&self, sol: &Self::Solution) -> f64;

    /// Whether the solution satisfies all hard constraints. The engine only
    /// ever accepts feasible candidates and only ever starts from a feasible
    /// incumbent.
    fn is_feasible(&self, sol: &Self::Solution) -> bool;

    /// Extra gate applied only when a candidate would become the new global
    /// best. A candidate failing this check may still be accepted as the
    /// incumbent (diversification), but is never recorded as the best.
    ///
    /// Use for expensive "deliverability" checks that would be wasteful on
    /// every candidate — SRA uses it to require that the best placement
    /// admit a transient-feasible migration schedule.
    fn accept_best(&self, _sol: &Self::Solution) -> bool {
        true
    }
}

/// A destroy operator: removes part of a solution.
pub trait Destroy<P: LnsProblem>: Send + Sync {
    /// Stable operator name (used in stats, ablation tables, and logs).
    fn name(&self) -> &str;

    /// Destroys `sol` into a partial state. `intensity` in `(0, 1]` scales
    /// how much of the solution should be removed; operators are free to
    /// interpret it (e.g. as a fraction of elements).
    fn destroy(&self, problem: &P, sol: &P::Solution, intensity: f64, rng: &mut StdRng)
        -> P::Partial;
}

/// A repair operator: completes a partial solution.
pub trait Repair<P: LnsProblem>: Send + Sync {
    /// Stable operator name.
    fn name(&self) -> &str;

    /// Repairs a partial state into a complete candidate, or `None` when no
    /// feasible completion was found (the iteration then counts as a failed
    /// proposal and the incumbent is kept).
    fn repair(&self, problem: &P, partial: P::Partial, rng: &mut StdRng)
        -> Option<P::Solution>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{PartitionProblem, RandomRemove, GreedyInsert};

    // The traits are exercised end-to-end by engine tests; here we only
    // check object safety in the form the engine uses (trait objects).
    #[test]
    fn operators_are_object_safe() {
        let destroys: Vec<Box<dyn Destroy<PartitionProblem>>> = vec![Box::new(RandomRemove)];
        let repairs: Vec<Box<dyn Repair<PartitionProblem>>> = vec![Box::new(GreedyInsert)];
        assert_eq!(destroys[0].name(), "random-remove");
        assert_eq!(repairs[0].name(), "greedy-insert");
    }
}
