//! The domain interface implemented by problems solved with this framework,
//! and the [`EditModel`] abstraction the unified [`crate::engine::Engine`]
//! drives.

use rand::rngs::StdRng;

/// A problem solvable by (A)LNS.
///
/// `Solution` is a complete, evaluable state. The framework never inspects
/// it — it only shuttles solutions between the operators and compares
/// objective values (lower is better).
pub trait LnsProblem {
    /// A complete candidate solution.
    type Solution: Clone + Send;

    /// Objective value of a solution; **lower is better**. Must be finite
    /// for feasible solutions.
    fn objective(&self, sol: &Self::Solution) -> f64;

    /// Whether the solution satisfies all hard constraints. The engine only
    /// ever accepts feasible candidates and only ever starts from a feasible
    /// incumbent.
    fn is_feasible(&self, sol: &Self::Solution) -> bool;

    /// Extra gate applied only when a candidate would become the new global
    /// best. A candidate failing this check may still be accepted as the
    /// incumbent (diversification), but is never recorded as the best.
    ///
    /// Use for expensive "deliverability" checks that would be wasteful on
    /// every candidate — SRA uses it to require that the best placement
    /// admit a transient-feasible migration schedule.
    fn accept_best(&self, _sol: &Self::Solution) -> bool {
        true
    }
}

/// The **in-place edit protocol**: the production hot path.
///
/// Cloning the incumbent every iteration (and fully re-evaluating the
/// clone) dominates iteration cost on large solutions. Problems
/// implementing this trait instead let the engine mutate **one** working
/// [`State`]:
///
/// * [`DestroyInPlace`] / [`RepairInPlace`] edit the state directly, with
///   every edit recorded in an undo log inside the state;
/// * on rejection the engine calls [`revert`], which must restore the
///   state **bit-exactly** to the last committed point;
/// * on acceptance the engine calls [`commit`], making the edits the new
///   baseline;
/// * the state carries incremental objective caches (e.g. per-machine
///   loads, a sum-of-squares accumulator) so [`state_objective`] touches
///   only what the burst edited; implementations bound float drift with a
///   periodic full resynchronization in `commit`;
/// * a full solution is cloned out ([`snapshot`]) only when a new global
///   best is recorded — the one remaining allocation on the accept path.
///
/// Semantics must match the whole-solution view: `state_objective` /
/// `state_feasible` / `state_accept_best` agree with
/// [`LnsProblem::objective`] / [`LnsProblem::is_feasible`] /
/// [`LnsProblem::accept_best`] evaluated on the state's solution (the
/// objective up to the documented drift bound).
///
/// [`State`]: LnsProblemInPlace::State
/// [`revert`]: LnsProblemInPlace::revert
/// [`commit`]: LnsProblemInPlace::commit
/// [`state_objective`]: LnsProblemInPlace::state_objective
/// [`snapshot`]: LnsProblemInPlace::snapshot
pub trait LnsProblemInPlace: LnsProblem {
    /// Mutable search state: the working solution plus whatever caches make
    /// delta evaluation cheap, plus the undo log.
    type State: Send;

    /// Wraps a solution into a state (one full evaluation; called once per
    /// engine run, not per iteration).
    fn make_state(&self, sol: Self::Solution) -> Self::State;

    /// Objective of the state's current solution, from the caches. Takes
    /// `&mut` so implementations may resolve lazily-maintained caches
    /// (e.g. rescan a stale peak) on demand.
    fn state_objective(&self, state: &mut Self::State) -> f64;

    /// Hard-constraint check of the current (edited, uncommitted) state.
    fn state_feasible(&self, state: &Self::State) -> bool;

    /// The [`LnsProblem::accept_best`] gate, evaluated on the state.
    fn state_accept_best(&self, _state: &Self::State) -> bool {
        true
    }

    /// Clones the current solution out of the state (new bests only).
    fn snapshot(&self, state: &Self::State) -> Self::Solution;

    /// Reverts every edit since the last commit, bit-exactly.
    fn revert(&self, state: &mut Self::State);

    /// Accepts the pending edits as the new baseline. Implementations may
    /// resynchronize incremental caches from scratch here periodically to
    /// bound floating-point drift.
    fn commit(&self, state: &mut Self::State);

    // ---- observability hooks ----------------------------------------------
    // Provided methods (default 0) so the engine can narrate the in-place
    // protocol — destroy size, undo-log depth, cache resynchronizations —
    // without macros and without forcing every problem to care. Only
    // consulted when a recording `rex_obs::Recorder` is attached.

    /// Number of elements currently detached and awaiting repair (the
    /// destroy size of the in-flight burst). Purely informational.
    fn state_destroyed(&self, _state: &Self::State) -> usize {
        0
    }

    /// Number of edits in the undo log since the last commit (the depth a
    /// revert would unwind). Purely informational.
    fn state_undo_depth(&self, _state: &Self::State) -> usize {
        0
    }

    /// Number of full cache resynchronizations performed so far (drift
    /// control; see [`commit`]). Purely informational.
    ///
    /// [`commit`]: LnsProblemInPlace::commit
    fn state_resyncs(&self, _state: &Self::State) -> u64 {
        0
    }
}

/// A destroy operator for the in-place protocol: removes part of the
/// state's solution, recording its edits in the state's undo log.
pub trait DestroyInPlace<P: LnsProblemInPlace>: Send + Sync {
    /// Stable operator name (used in stats, ablation tables, and logs).
    fn name(&self) -> &str;

    /// Destroys part of the state in place. `intensity` in `(0, 1]` scales
    /// how much of the solution should be removed; operators are free to
    /// interpret it (e.g. as a fraction of elements).
    fn destroy(&self, problem: &P, state: &mut P::State, intensity: f64, rng: &mut StdRng);
}

/// A repair operator for the in-place protocol: completes the state's
/// solution, recording its edits in the state's undo log.
pub trait RepairInPlace<P: LnsProblemInPlace>: Send + Sync {
    /// Stable operator name.
    fn name(&self) -> &str;

    /// Repairs the state in place. Returns `false` when no feasible
    /// completion was found — the engine then reverts the iteration's
    /// edits, so the state may be left partially repaired (but with a
    /// complete undo log).
    fn repair(&self, problem: &P, state: &mut P::State, rng: &mut StdRng) -> bool;
}

/// What the unified [`crate::engine::Engine`] drives: a working search
/// position plus an operator portfolio, behind one mutation protocol.
///
/// The engine never sees problems, states, or operator lists — only a
/// model. One iteration is:
///
/// ```text
/// destroy(i) → repair(j) → feasible()? → objective() → accept?
///     → commit() [snapshot() on a new best]   or   → revert()
/// ```
///
/// Implementations must keep [`revert`] bit-exact (the engine relies on it
/// to discard rejected bursts) and keep [`objective`] consistent with the
/// solution a subsequent [`snapshot`] returns.
///
/// The production implementation is [`InPlaceModel`]; [`CloneOracle`]
/// exists only to differentially test it.
///
/// [`revert`]: EditModel::revert
/// [`objective`]: EditModel::objective
/// [`snapshot`]: EditModel::snapshot
pub trait EditModel {
    /// The complete-solution type snapshots return.
    type Solution: Clone + Send;

    /// Number of destroy operators in the portfolio (≥ 1 for the engine).
    fn destroy_count(&self) -> usize;

    /// Number of repair operators in the portfolio (≥ 1 for the engine).
    fn repair_count(&self) -> usize;

    /// Stable name of destroy operator `i` (stats, traces, ablations).
    fn destroy_name(&self, i: usize) -> &str;

    /// Stable name of repair operator `i`.
    fn repair_name(&self, i: usize) -> &str;

    /// Applies destroy operator `i` at the given intensity.
    fn destroy(&mut self, i: usize, intensity: f64, rng: &mut StdRng);

    /// Applies repair operator `i`; `false` when no feasible completion was
    /// found (the engine then reverts the burst).
    fn repair(&mut self, i: usize, rng: &mut StdRng) -> bool;

    /// Hard-constraint check of the current (edited, uncommitted) position.
    fn feasible(&self) -> bool;

    /// Objective of the current position; **lower is better**.
    fn objective(&mut self) -> f64;

    /// The [`LnsProblem::accept_best`] gate, evaluated on the current
    /// position.
    fn accept_best(&self) -> bool;

    /// Clones the current solution out of the model (new bests only).
    fn snapshot(&self) -> Self::Solution;

    /// Accepts the pending edits as the new baseline.
    fn commit(&mut self);

    /// Discards every edit since the last commit, bit-exactly.
    fn revert(&mut self);

    // ---- observability hooks (see the LnsProblemInPlace counterparts) ----

    /// Elements currently detached and awaiting repair.
    fn destroyed(&self) -> usize {
        0
    }

    /// Edits in the undo log since the last commit.
    fn undo_depth(&self) -> usize {
        0
    }

    /// Full cache resynchronizations performed so far.
    fn resyncs(&self) -> u64 {
        0
    }
}

/// The production [`EditModel`]: one mutable [`LnsProblemInPlace::State`]
/// edited in place, with rejection handled by unwinding the state's undo
/// log.
pub struct InPlaceModel<'p, P: LnsProblemInPlace> {
    problem: &'p P,
    state: P::State,
    destroys: Vec<Box<dyn DestroyInPlace<P>>>,
    repairs: Vec<Box<dyn RepairInPlace<P>>>,
}

impl<'p, P: LnsProblemInPlace> InPlaceModel<'p, P> {
    /// Wraps `initial` into a working state over `problem`.
    ///
    /// # Panics
    /// If `initial` is infeasible — the search contract requires a feasible
    /// starting incumbent.
    pub fn new(
        problem: &'p P,
        initial: P::Solution,
        destroys: Vec<Box<dyn DestroyInPlace<P>>>,
        repairs: Vec<Box<dyn RepairInPlace<P>>>,
    ) -> Self {
        assert!(
            problem.is_feasible(&initial),
            "LNS must start from a feasible solution"
        );
        let state = problem.make_state(initial);
        Self {
            problem,
            state,
            destroys,
            repairs,
        }
    }
}

impl<P: LnsProblemInPlace> EditModel for InPlaceModel<'_, P> {
    type Solution = P::Solution;

    fn destroy_count(&self) -> usize {
        self.destroys.len()
    }
    fn repair_count(&self) -> usize {
        self.repairs.len()
    }
    fn destroy_name(&self, i: usize) -> &str {
        self.destroys[i].name()
    }
    fn repair_name(&self, i: usize) -> &str {
        self.repairs[i].name()
    }
    fn destroy(&mut self, i: usize, intensity: f64, rng: &mut StdRng) {
        self.destroys[i].destroy(self.problem, &mut self.state, intensity, rng);
    }
    fn repair(&mut self, i: usize, rng: &mut StdRng) -> bool {
        self.repairs[i].repair(self.problem, &mut self.state, rng)
    }
    fn feasible(&self) -> bool {
        self.problem.state_feasible(&self.state)
    }
    fn objective(&mut self) -> f64 {
        self.problem.state_objective(&mut self.state)
    }
    fn accept_best(&self) -> bool {
        self.problem.state_accept_best(&self.state)
    }
    fn snapshot(&self) -> P::Solution {
        self.problem.snapshot(&self.state)
    }
    fn commit(&mut self) {
        self.problem.commit(&mut self.state);
    }
    fn revert(&mut self) {
        self.problem.revert(&mut self.state);
    }
    fn destroyed(&self) -> usize {
        self.problem.state_destroyed(&self.state)
    }
    fn undo_depth(&self) -> usize {
        self.problem.state_undo_depth(&self.state)
    }
    fn resyncs(&self) -> u64 {
        self.problem.state_resyncs(&self.state)
    }
}

/// The **differential-test oracle**: identical to [`InPlaceModel`] in every
/// way — same operators, same arithmetic, same RNG consumption — except
/// that rejection restores a saved whole-state clone instead of unwinding
/// the undo log.
///
/// A search driven through this model is therefore bit-identical to one
/// driven through [`InPlaceModel`] *if and only if* the problem's
/// [`LnsProblemInPlace::revert`] is bit-exact, which is exactly what the
/// `spine_vs_legacy` suite asserts. Requires `P::State: Clone`, so it is
/// only instantiable over test problems with cloneable states (the real
/// SRA state deliberately is not).
#[doc(hidden)] // test-only: never use this on a production path — every
               // rejected iteration pays a whole-state clone restore.
pub struct CloneOracle<'p, P: LnsProblemInPlace>
where
    P::State: Clone,
{
    problem: &'p P,
    state: P::State,
    saved: P::State,
    destroys: Vec<Box<dyn DestroyInPlace<P>>>,
    repairs: Vec<Box<dyn RepairInPlace<P>>>,
}

impl<'p, P: LnsProblemInPlace> CloneOracle<'p, P>
where
    P::State: Clone,
{
    /// Wraps `initial` into a working state plus its saved twin.
    ///
    /// # Panics
    /// If `initial` is infeasible (same contract as [`InPlaceModel::new`]).
    pub fn new(
        problem: &'p P,
        initial: P::Solution,
        destroys: Vec<Box<dyn DestroyInPlace<P>>>,
        repairs: Vec<Box<dyn RepairInPlace<P>>>,
    ) -> Self {
        assert!(
            problem.is_feasible(&initial),
            "LNS must start from a feasible solution"
        );
        let state = problem.make_state(initial);
        let saved = state.clone();
        Self {
            problem,
            state,
            saved,
            destroys,
            repairs,
        }
    }
}

impl<P: LnsProblemInPlace> EditModel for CloneOracle<'_, P>
where
    P::State: Clone,
{
    type Solution = P::Solution;

    fn destroy_count(&self) -> usize {
        self.destroys.len()
    }
    fn repair_count(&self) -> usize {
        self.repairs.len()
    }
    fn destroy_name(&self, i: usize) -> &str {
        self.destroys[i].name()
    }
    fn repair_name(&self, i: usize) -> &str {
        self.repairs[i].name()
    }
    fn destroy(&mut self, i: usize, intensity: f64, rng: &mut StdRng) {
        self.destroys[i].destroy(self.problem, &mut self.state, intensity, rng);
    }
    fn repair(&mut self, i: usize, rng: &mut StdRng) -> bool {
        self.repairs[i].repair(self.problem, &mut self.state, rng)
    }
    fn feasible(&self) -> bool {
        self.problem.state_feasible(&self.state)
    }
    fn objective(&mut self) -> f64 {
        self.problem.state_objective(&mut self.state)
    }
    fn accept_best(&self) -> bool {
        self.problem.state_accept_best(&self.state)
    }
    fn snapshot(&self) -> P::Solution {
        self.problem.snapshot(&self.state)
    }
    fn commit(&mut self) {
        // The real commit first (identical resync cadence to the in-place
        // model), then refresh the rollback point.
        self.problem.commit(&mut self.state);
        self.saved = self.state.clone();
    }
    fn revert(&mut self) {
        self.state = self.saved.clone();
    }
    fn destroyed(&self) -> usize {
        self.problem.state_destroyed(&self.state)
    }
    fn undo_depth(&self) -> usize {
        self.problem.state_undo_depth(&self.state)
    }
    fn resyncs(&self) -> u64 {
        self.problem.state_resyncs(&self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{GreedyInsertInPlace, PartitionProblem, RandomRemoveInPlace};

    // The traits are exercised end-to-end by engine tests; here we only
    // check object safety in the form the models use (trait objects).
    #[test]
    fn in_place_operators_are_object_safe() {
        let destroys: Vec<Box<dyn DestroyInPlace<PartitionProblem>>> =
            vec![Box::new(RandomRemoveInPlace)];
        let repairs: Vec<Box<dyn RepairInPlace<PartitionProblem>>> =
            vec![Box::new(GreedyInsertInPlace)];
        assert_eq!(destroys[0].name(), "random-remove");
        assert_eq!(repairs[0].name(), "greedy-insert");
    }

    #[test]
    fn models_expose_the_operator_portfolio() {
        let problem = PartitionProblem::random(12, 3, 7);
        let model = InPlaceModel::new(
            &problem,
            problem.all_in_first_bin(),
            vec![Box::new(RandomRemoveInPlace)],
            vec![Box::new(GreedyInsertInPlace)],
        );
        assert_eq!(model.destroy_count(), 1);
        assert_eq!(model.repair_count(), 1);
        assert_eq!(model.destroy_name(0), "random-remove");
        assert_eq!(model.repair_name(0), "greedy-insert");

        let oracle = CloneOracle::new(
            &problem,
            problem.all_in_first_bin(),
            vec![Box::new(RandomRemoveInPlace)],
            vec![Box::new(GreedyInsertInPlace)],
        );
        assert_eq!(oracle.destroy_name(0), "random-remove");
        assert_eq!(oracle.repair_name(0), "greedy-insert");
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn in_place_model_rejects_infeasible_start() {
        let problem = PartitionProblem::random(5, 2, 1);
        let _ = InPlaceModel::new(
            &problem,
            problem.infeasible_solution(),
            vec![Box::new(RandomRemoveInPlace)],
            vec![Box::new(GreedyInsertInPlace)],
        );
    }
}
