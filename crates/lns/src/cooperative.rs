//! Cooperative decomposed search: one worker per sub-problem, with
//! deterministic `(round, partition)` seed derivation.
//!
//! Where the [`crate::portfolio`] runs N *independent* copies of the same
//! problem and keeps the best, a cooperative round runs one worker per
//! **sub-problem** (a partition of a larger problem), so the workers share
//! nothing and their solutions compose instead of competing. The caller
//! owns the decomposition, the merge, and the round loop; this module owns
//! the deterministic parallel execution of one round:
//!
//! * every job's seed is a pure function of `(base_seed, round,
//!   partition)` — [`round_seed`] — fixed **before** the parallel section;
//! * every job's [`EditModel`] is likewise built by the caller before the
//!   parallel section, so worker launch performs no hidden setup;
//! * jobs run over the deterministic rayon shim, whose `collect` places
//!   results by index, so the output order is the job order regardless of
//!   which OS thread ran what;
//! * workers run untraced (recording inside a parallel section would
//!   interleave nondeterministically — the caller narrates the reduction
//!   after the barrier, the same discipline as the portfolio).
//!
//! Together those give the decomposed-solver determinism contract:
//! byte-identical results for any `REX_THREADS`.

use crate::accept::Acceptance;
use crate::engine::{Engine, LnsConfig, SearchOutcome};
use crate::problem::EditModel;
use rayon::prelude::*;

/// splitmix64 finalizer: bijective avalanche mixing.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic worker seed for partition `partition` in round `round`.
///
/// A pure function of its arguments — the sequence point the decomposed
/// solver's determinism rests on. Distinct `(round, partition)` pairs get
/// distinct seeds (the round/partition tag is injective for any realistic
/// partition count, and the finalizer is bijective).
pub fn round_seed(base: u64, round: u64, partition: usize) -> u64 {
    base ^ mix(round
        .wrapping_mul(0x0000_0001_0000_0001)
        .wrapping_add(partition as u64 + 1))
}

/// One worker's assignment for a cooperative round: the ready-to-run edit
/// model over its sub-problem (starting solution already installed) and
/// its predetermined seed.
///
/// Models and seeds are constructed by the caller *before* the parallel
/// section — the round itself performs no per-worker setup beyond building
/// the engine, so worker launch does no hidden cloning.
pub struct RoundJob<M: EditModel> {
    /// The edit model this worker drives (sub-problem + start solution).
    pub model: M,
    /// Seed from [`round_seed`].
    pub seed: u64,
}

/// Runs every job of one round in parallel and returns the outcomes in job
/// order. Results are a pure function of the jobs and the configuration —
/// thread count is unobservable.
pub fn cooperative_round<M>(
    jobs: Vec<RoundJob<M>>,
    engine_cfg: LnsConfig,
    make_acceptance: impl Fn() -> Box<dyn Acceptance> + Sync,
) -> Vec<SearchOutcome<M::Solution>>
where
    M: EditModel + Send,
{
    jobs.into_par_iter()
        .map(|job| {
            let engine = Engine::new(job.model, make_acceptance(), engine_cfg);
            engine.run(job.seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accept::SimulatedAnnealing;
    use crate::problem::InPlaceModel;
    use crate::toy::{
        GreedyInsertInPlace, PartitionProblem, RandomRemoveInPlace, WorstBinRemoveInPlace,
    };

    fn run_round(seed: u64) -> Vec<SearchOutcome<Vec<usize>>> {
        // Three independent toy sub-problems standing in for partitions.
        let problems: Vec<PartitionProblem> = (0..3)
            .map(|i| PartitionProblem::random(20 + 4 * i, 3, 11 + i as u64))
            .collect();
        let jobs: Vec<RoundJob<InPlaceModel<'_, PartitionProblem>>> = problems
            .iter()
            .enumerate()
            .map(|(p, problem)| RoundJob {
                model: InPlaceModel::new(
                    problem,
                    problem.all_in_first_bin(),
                    vec![
                        Box::new(RandomRemoveInPlace),
                        Box::new(WorstBinRemoveInPlace),
                    ],
                    vec![Box::new(GreedyInsertInPlace)],
                ),
                seed: round_seed(seed, 0, p),
            })
            .collect();
        cooperative_round(
            jobs,
            LnsConfig {
                max_iters: 400,
                ..Default::default()
            },
            || Box::new(SimulatedAnnealing::for_normalized_loads(400)),
        )
    }

    #[test]
    fn outcomes_arrive_in_job_order_and_improve() {
        let outs = run_round(5);
        assert_eq!(outs.len(), 3);
        for o in &outs {
            assert!(o.best_objective.is_finite());
            assert!(o.iterations > 0);
        }
    }

    #[test]
    fn round_is_deterministic() {
        let a = run_round(9);
        let b = run_round(9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.best_objective, y.best_objective);
            assert_eq!(x.best, y.best);
            assert_eq!(x.iterations, y.iterations);
        }
    }

    #[test]
    fn round_seeds_are_distinct() {
        let mut seeds: Vec<u64> = Vec::new();
        for round in 0..8u64 {
            for p in 0..16usize {
                seeds.push(round_seed(77, round, p));
            }
        }
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
