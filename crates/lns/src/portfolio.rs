//! Parallel multi-start portfolio search.
//!
//! Runs `workers` independent ALNS searches over rayon and keeps the best
//! result. Worker seeds derive deterministically from the base seed, and
//! the reduction is an order-independent minimum (ties broken by worker
//! index), so the outcome is reproducible regardless of thread scheduling —
//! the determinism discipline the HPC guides call for.
//!
//! The portfolio is generic over [`EditModel`]: each worker gets its own
//! model (built by the caller's factory from a clone of the shared initial
//! solution) and drives the one unified [`Engine`].

use crate::accept::Acceptance;
use crate::engine::{Engine, LnsConfig, SearchOutcome};
use crate::problem::EditModel;
use rayon::prelude::*;
use rex_obs::Recorder;
use serde::Serialize;

/// Portfolio tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct PortfolioConfig {
    /// Number of independent workers.
    pub workers: usize,
    /// Engine configuration shared by all workers.
    pub engine: LnsConfig,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            engine: LnsConfig::default(),
        }
    }
}

/// Per-worker result summary.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct WorkerResult {
    /// Worker index.
    pub worker: usize,
    /// Best objective the worker reached.
    pub objective: f64,
    /// Iterations the worker executed.
    pub iterations: u64,
}

/// Result of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome<S> {
    /// Best solution across all workers.
    pub best: S,
    /// Its objective value.
    pub best_objective: f64,
    /// Index of the winning worker.
    pub winner: usize,
    /// Summary of every worker's run.
    pub worker_results: Vec<WorkerResult>,
}

/// Deterministic per-worker seed derivation (splitmix-style odd multiplier).
pub fn worker_seed(base: u64, worker: usize) -> u64 {
    base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker as u64 + 1))
}

/// Runs `cfg.workers` independent searches in parallel and returns the best.
///
/// `make_model` is invoked once per worker (inside that worker's task, from
/// a clone of `initial`) so each worker owns private operator and state
/// storage; `make_acceptance` likewise.
pub fn portfolio_search<M: EditModel>(
    initial: &M::Solution,
    base_seed: u64,
    cfg: &PortfolioConfig,
    make_model: impl Fn(M::Solution) -> M + Sync,
    make_acceptance: impl Fn() -> Box<dyn Acceptance> + Sync,
) -> PortfolioOutcome<M::Solution> {
    assert!(cfg.workers >= 1, "portfolio needs at least one worker");
    // Per-worker starting solutions and the whole seed stream are built
    // *before* the parallel section: an N-worker solve clones the initial
    // solution exactly N times, and the closure does no hidden setup
    // allocations beyond what the model factory itself performs.
    let jobs: Vec<(usize, M::Solution, u64)> = (0..cfg.workers)
        .map(|w| (w, initial.clone(), worker_seed(base_seed, w)))
        .collect();
    let outcomes: Vec<(usize, SearchOutcome<M::Solution>)> = jobs
        .into_par_iter()
        .map(|(w, start, seed)| {
            let engine = Engine::new(make_model(start), make_acceptance(), cfg.engine);
            (w, engine.run(seed))
        })
        .collect();

    let worker_results: Vec<WorkerResult> = outcomes
        .iter()
        .map(|(w, o)| WorkerResult {
            worker: *w,
            objective: o.best_objective,
            iterations: o.iterations,
        })
        .collect();

    let (winner, best_outcome) = outcomes
        .into_iter()
        .min_by(|(wa, a), (wb, b)| {
            a.best_objective
                .partial_cmp(&b.best_objective)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(wa.cmp(wb))
        })
        .expect("at least one worker");

    PortfolioOutcome {
        best: best_outcome.best,
        best_objective: best_outcome.best_objective,
        winner,
        worker_results,
    }
}

/// [`portfolio_search`] with a trace: wraps the run in a
/// `("lns", "portfolio")` span and emits one `("lns", "worker")` summary
/// event per worker, in worker order.
///
/// Workers themselves run **untraced** — per-iteration events from
/// concurrently running workers would interleave nondeterministically, so
/// the portfolio only narrates the deterministic reduction. Summaries are
/// emitted sequentially after the parallel section, which keeps the trace
/// byte-identical across thread counts (satellite determinism contract; see
/// `tests/threads_determinism.rs`).
pub fn portfolio_search_recorded<M: EditModel>(
    initial: &M::Solution,
    base_seed: u64,
    cfg: &PortfolioConfig,
    make_model: impl Fn(M::Solution) -> M + Sync,
    make_acceptance: impl Fn() -> Box<dyn Acceptance> + Sync,
    rec: &mut Recorder,
) -> PortfolioOutcome<M::Solution> {
    if rec.is_active() {
        rec.span_open(
            "lns",
            "portfolio",
            vec![
                ("workers", cfg.workers.into()),
                ("base_seed", base_seed.into()),
                ("max_iters", cfg.engine.max_iters.into()),
            ],
        );
    }
    let out = portfolio_search(initial, base_seed, cfg, make_model, make_acceptance);
    if rec.is_active() {
        for w in &out.worker_results {
            rec.event(
                "lns",
                "worker",
                vec![
                    ("worker", w.worker.into()),
                    ("seed", worker_seed(base_seed, w.worker).into()),
                    ("objective", w.objective.into()),
                    ("iterations", w.iterations.into()),
                ],
            );
        }
        rec.span_close(
            "lns",
            "portfolio",
            vec![
                ("winner", out.winner.into()),
                ("best_objective", out.best_objective.into()),
            ],
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accept::SimulatedAnnealing;
    use crate::problem::InPlaceModel;
    use crate::toy::{
        GreedyInsertInPlace, PartitionProblem, RandomRemoveInPlace, WorstBinRemoveInPlace,
    };

    fn run(workers: usize, seed: u64) -> PortfolioOutcome<Vec<usize>> {
        let problem = PartitionProblem::random(40, 4, 77);
        let initial = problem.all_in_first_bin();
        let cfg = PortfolioConfig {
            workers,
            engine: LnsConfig {
                max_iters: 1_500,
                ..Default::default()
            },
        };
        portfolio_search(
            &initial,
            seed,
            &cfg,
            |start| {
                InPlaceModel::new(
                    &problem,
                    start,
                    vec![
                        Box::new(RandomRemoveInPlace),
                        Box::new(WorstBinRemoveInPlace),
                    ],
                    vec![Box::new(GreedyInsertInPlace)],
                )
            },
            || Box::new(SimulatedAnnealing::for_normalized_loads(1_500)),
        )
    }

    #[test]
    fn portfolio_finds_good_solutions() {
        let out = run(4, 1);
        assert!(out.best_objective < 1.3, "got {}", out.best_objective);
        assert_eq!(out.worker_results.len(), 4);
    }

    #[test]
    fn portfolio_is_deterministic() {
        let a = run(4, 42);
        let b = run(4, 42);
        assert_eq!(a.best_objective, b.best_objective);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.best, b.best);
        for (x, y) in a.worker_results.iter().zip(&b.worker_results) {
            assert_eq!(x.objective, y.objective);
        }
    }

    #[test]
    fn best_matches_min_of_workers() {
        let out = run(6, 9);
        let min = out
            .worker_results
            .iter()
            .map(|w| w.objective)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(out.best_objective, min);
    }

    #[test]
    fn more_workers_never_hurt() {
        // With the same base seed, worker 0's run is identical, so the best
        // over a superset of workers is at least as good.
        let small = run(1, 5);
        let large = run(4, 5);
        assert!(large.best_objective <= small.best_objective + 1e-12);
    }

    #[test]
    fn worker_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..16).map(|w| worker_seed(123, w)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    #[should_panic]
    fn zero_workers_panics() {
        run(0, 1);
    }

    fn run_recorded(workers: usize, seed: u64, rec: &mut Recorder) -> PortfolioOutcome<Vec<usize>> {
        let problem = PartitionProblem::random(40, 4, 77);
        let initial = problem.all_in_first_bin();
        let cfg = PortfolioConfig {
            workers,
            engine: LnsConfig {
                max_iters: 1_500,
                ..Default::default()
            },
        };
        portfolio_search_recorded(
            &initial,
            seed,
            &cfg,
            |start| {
                InPlaceModel::new(
                    &problem,
                    start,
                    vec![
                        Box::new(RandomRemoveInPlace),
                        Box::new(WorstBinRemoveInPlace),
                    ],
                    vec![Box::new(GreedyInsertInPlace)],
                )
            },
            || Box::new(SimulatedAnnealing::for_normalized_loads(1_500)),
            rec,
        )
    }

    #[test]
    fn recorded_portfolio_matches_plain_and_narrates_workers() {
        let plain = run(4, 42);
        let mut rec = Recorder::active();
        let traced = run_recorded(4, 42, &mut rec);
        assert_eq!(plain.best_objective, traced.best_objective);
        assert_eq!(plain.winner, traced.winner);
        assert_eq!(plain.best, traced.best);
        let workers: Vec<_> = rec.events().iter().filter(|e| e.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        assert_eq!(rec.open_spans(), 0);
        // Worker summaries appear in worker order (sequential emission).
        for (i, e) in workers.iter().enumerate() {
            let (_, v) = &e.fields[0];
            assert_eq!(
                format!("{v:?}"),
                format!("{:?}", rex_obs::Value::U64(i as u64))
            );
        }
    }

    #[test]
    fn recorded_portfolio_trace_is_byte_identical_across_runs() {
        let mut ra = Recorder::active();
        let _ = run_recorded(4, 7, &mut ra);
        let mut rb = Recorder::active();
        let _ = run_recorded(4, 7, &mut rb);
        assert_eq!(ra.to_jsonl(), rb.to_jsonl());
    }
}
