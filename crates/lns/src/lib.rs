//! # rex-lns
//!
//! A generic **adaptive large neighborhood search** (ALNS) framework — the
//! metaheuristic substrate under the paper's SRA algorithm.
//!
//! LNS repeatedly *destroys* part of an incumbent solution and *repairs* it,
//! accepting or rejecting the result; the adaptive variant learns which
//! destroy/repair operator pairs are productive via roulette-wheel weights
//! (Ropke & Pisinger). This crate keeps all of that machinery generic so the
//! ablation benches can swap acceptance criteria and operator sets without
//! touching the domain logic in `rex-core`:
//!
//! * [`problem::LnsProblem`], [`problem::Destroy`], [`problem::Repair`] —
//!   the domain interface,
//! * [`problem::LnsProblemInPlace`], [`problem::DestroyInPlace`],
//!   [`problem::RepairInPlace`] — the allocation-free in-place edit
//!   protocol (destroy/repair mutate one working state; rejected edits are
//!   reverted from an undo log instead of discarding a clone),
//! * [`accept`] — hill-climbing, simulated annealing, record-to-record,
//! * [`weights::OperatorWeights`] — adaptive operator selection,
//! * [`engine::LnsEngine`] — the clone-based iteration loop, with a
//!   best-objective trajectory recorder for convergence plots,
//! * [`engine::InPlaceEngine`] — the same loop over the in-place protocol
//!   (the hot path used by SRA),
//! * [`portfolio`] — a rayon-parallel multi-start runner with a
//!   deterministic reduction,
//! * [`toy`] — a tiny number-partitioning problem used by the tests and the
//!   documentation examples.
//!
//! Determinism: every run is driven by a caller-supplied `u64` seed; the
//! portfolio derives worker seeds as `seed ⊕ worker` and reduces with an
//! order-independent minimum, so parallel results are reproducible.
//!
//! Observability: both engines expose `run_recorded` variants (and the
//! portfolio a `portfolio_search_in_place_recorded`) that narrate the search
//! into a [`rex_obs::Recorder`] — per-iteration operator/outcome/delta
//! events, cache-resync markers, and per-worker summaries. Recording never
//! perturbs the search, and a `Recorder::Noop` costs one discriminant check
//! per iteration.

pub mod accept;
pub mod cooperative;
pub mod engine;
pub mod portfolio;
pub mod problem;
pub mod toy;
pub mod weights;

pub use accept::{Acceptance, HillClimb, RecordToRecord, SimulatedAnnealing};
pub use cooperative::{cooperative_round, round_seed, RoundJob};
pub use engine::{
    EngineStats, InPlaceEngine, LnsConfig, LnsEngine, SearchOutcome, TrajectoryPoint,
};
pub use portfolio::{
    portfolio_search, portfolio_search_in_place, portfolio_search_in_place_recorded,
    PortfolioConfig, PortfolioOutcome,
};
pub use problem::{Destroy, DestroyInPlace, LnsProblem, LnsProblemInPlace, Repair, RepairInPlace};
pub use weights::OperatorWeights;
