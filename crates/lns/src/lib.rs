//! # rex-lns
//!
//! A generic **adaptive large neighborhood search** (ALNS) framework — the
//! metaheuristic substrate under the paper's SRA algorithm.
//!
//! LNS repeatedly *destroys* part of an incumbent solution and *repairs* it,
//! accepting or rejecting the result; the adaptive variant learns which
//! destroy/repair operator pairs are productive via roulette-wheel weights
//! (Ropke & Pisinger). This crate keeps all of that machinery generic so the
//! ablation benches can swap acceptance criteria and operator sets without
//! touching the domain logic in `rex-core`:
//!
//! * [`problem::LnsProblem`] — the domain interface (objective,
//!   feasibility, best-gate),
//! * [`problem::LnsProblemInPlace`], [`problem::DestroyInPlace`],
//!   [`problem::RepairInPlace`] — the allocation-free in-place edit
//!   protocol (destroy/repair mutate one working state; rejected edits are
//!   reverted from an undo log instead of discarding a clone),
//! * [`problem::EditModel`] — the engine-facing edit surface; the
//!   production implementation is [`problem::InPlaceModel`] (undo-log
//!   reverts), and [`problem::CloneOracle`] is a test-only differential
//!   oracle that reverts by cloning a saved state,
//! * [`accept`] — hill-climbing, simulated annealing, record-to-record,
//! * [`weights::OperatorWeights`] — adaptive operator selection,
//! * [`engine::Engine`] — **the one iteration loop** (`Engine<M:
//!   EditModel>`): adaptive operator choice, acceptance, budget handling,
//!   trace events, and the best-objective trajectory recorder all live
//!   here and nowhere else,
//! * [`portfolio`] — a rayon-parallel multi-start runner with a
//!   deterministic reduction, generic over the edit model,
//! * [`cooperative`] — deterministic parallel execution of one decomposed
//!   round (one worker per sub-problem),
//! * [`toy`] — a tiny number-partitioning problem used by the tests and the
//!   documentation examples.
//!
//! Determinism: every run is driven by a caller-supplied `u64` seed; the
//! portfolio derives worker seeds as `seed ⊕ worker` and reduces with an
//! order-independent minimum, so parallel results are reproducible.
//!
//! Observability: the engine exposes a `run_recorded` variant (and the
//! portfolio a `portfolio_search_recorded`) that narrates the search into a
//! [`rex_obs::Recorder`] — per-iteration operator/outcome/delta events,
//! cache-resync markers, and per-worker summaries. Recording never perturbs
//! the search, and a `Recorder::Noop` costs one discriminant check per
//! iteration.

pub mod accept;
pub mod cooperative;
pub mod engine;
pub mod portfolio;
pub mod problem;
pub mod toy;
pub mod weights;

pub use accept::{Acceptance, HillClimb, RecordToRecord, SimulatedAnnealing};
pub use cooperative::{cooperative_round, round_seed, RoundJob};
pub use engine::{Engine, EngineStats, LnsConfig, SearchOutcome, TrajectoryPoint};
pub use portfolio::{
    portfolio_search, portfolio_search_recorded, worker_seed, PortfolioConfig, PortfolioOutcome,
};
pub use problem::{
    CloneOracle, DestroyInPlace, EditModel, InPlaceModel, LnsProblem, LnsProblemInPlace,
    RepairInPlace,
};
pub use weights::OperatorWeights;
