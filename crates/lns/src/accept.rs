//! Acceptance criteria: decide whether a repaired candidate replaces the
//! incumbent.
//!
//! The ablation study (experiment E9) compares these three classics:
//!
//! * [`HillClimb`] — accept only strict improvements; fast but easily stuck,
//! * [`SimulatedAnnealing`] — accept worsenings with probability
//!   `exp(-Δ/T)` under a geometrically cooling temperature; the paper's LNS
//!   family conventionally uses this,
//! * [`RecordToRecord`] — accept anything within a (shrinking) band above
//!   the best objective seen.

use rand::rngs::StdRng;
use rand::RngExt;

/// Decides whether a candidate objective value is accepted.
///
/// Implementations are stateful (temperature schedules, bands) and are
/// ticked once per engine iteration via [`Acceptance::step`].
pub trait Acceptance: Send {
    /// Stable name for stats and ablation tables.
    fn name(&self) -> &str;

    /// Whether a candidate with objective `candidate` replaces the
    /// incumbent with objective `current`, given the best value seen so far.
    fn accept(&mut self, candidate: f64, current: f64, best: f64, rng: &mut StdRng) -> bool;

    /// Advances schedule state (called once per iteration, after `accept`).
    fn step(&mut self) {}

    /// Clones the criterion into a fresh box with initial schedule state
    /// (used by the portfolio to hand each worker its own copy).
    fn fresh(&self) -> Box<dyn Acceptance>;
}

/// Accept only strict improvements over the incumbent.
#[derive(Clone, Copy, Debug, Default)]
pub struct HillClimb;

impl Acceptance for HillClimb {
    fn name(&self) -> &str {
        "hill-climb"
    }

    fn accept(&mut self, candidate: f64, current: f64, _best: f64, _rng: &mut StdRng) -> bool {
        candidate < current
    }

    fn fresh(&self) -> Box<dyn Acceptance> {
        Box::new(*self)
    }
}

/// Metropolis acceptance with geometric cooling.
#[derive(Clone, Copy, Debug)]
pub struct SimulatedAnnealing {
    /// Initial temperature, in objective units.
    pub t0: f64,
    /// Per-iteration multiplicative cooling factor in `(0, 1)`.
    pub cooling: f64,
    /// Temperature floor (keeps `exp` well-behaved late in the run).
    pub t_min: f64,
    temperature: f64,
}

impl SimulatedAnnealing {
    /// Creates a schedule starting at `t0`, cooling by `cooling` per
    /// iteration, floored at `t_min`.
    pub fn new(t0: f64, cooling: f64, t_min: f64) -> Self {
        assert!(t0 > 0.0 && (0.0..1.0).contains(&cooling) && t_min > 0.0);
        Self {
            t0,
            cooling,
            t_min,
            temperature: t0,
        }
    }

    /// A schedule tuned for objectives on the `[0, ~2]` scale of normalized
    /// loads: starts warm enough to cross small barriers, cools within a
    /// few thousand iterations.
    pub fn for_normalized_loads(iters: usize) -> Self {
        // Choose cooling so temperature decays by ~1e4 over the run.
        let cooling = (1e-4f64).powf(1.0 / iters.max(1) as f64);
        Self::new(0.05, cooling, 1e-7)
    }

    /// Current temperature (exposed for tests and diagnostics).
    pub fn temperature(&self) -> f64 {
        self.temperature
    }
}

impl Acceptance for SimulatedAnnealing {
    fn name(&self) -> &str {
        "simulated-annealing"
    }

    fn accept(&mut self, candidate: f64, current: f64, _best: f64, rng: &mut StdRng) -> bool {
        if candidate < current {
            return true;
        }
        let delta = candidate - current;
        rng.random::<f64>() < (-delta / self.temperature).exp()
    }

    fn step(&mut self) {
        self.temperature = (self.temperature * self.cooling).max(self.t_min);
    }

    fn fresh(&self) -> Box<dyn Acceptance> {
        Box::new(Self::new(self.t0, self.cooling, self.t_min))
    }
}

/// Record-to-record travel: accept any candidate within `deviation × best`
/// above the best objective found so far.
#[derive(Clone, Copy, Debug)]
pub struct RecordToRecord {
    /// Allowed relative deviation above the record (e.g. `0.02` = 2%).
    pub deviation: f64,
}

impl RecordToRecord {
    /// Creates the criterion with the given relative deviation.
    pub fn new(deviation: f64) -> Self {
        assert!(deviation >= 0.0);
        Self { deviation }
    }
}

impl Acceptance for RecordToRecord {
    fn name(&self) -> &str {
        "record-to-record"
    }

    fn accept(&mut self, candidate: f64, _current: f64, best: f64, _rng: &mut StdRng) -> bool {
        candidate <= best * (1.0 + self.deviation)
    }

    fn fresh(&self) -> Box<dyn Acceptance> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn hill_climb_accepts_only_improvements() {
        let mut hc = HillClimb;
        let mut r = rng();
        assert!(hc.accept(0.9, 1.0, 0.8, &mut r));
        assert!(!hc.accept(1.0, 1.0, 0.8, &mut r));
        assert!(!hc.accept(1.1, 1.0, 0.8, &mut r));
    }

    #[test]
    fn sa_always_accepts_improvements() {
        let mut sa = SimulatedAnnealing::new(0.01, 0.99, 1e-9);
        let mut r = rng();
        for _ in 0..100 {
            assert!(sa.accept(0.5, 1.0, 0.5, &mut r));
        }
    }

    #[test]
    fn sa_accepts_some_worsenings_when_hot_and_none_when_cold() {
        let mut hot = SimulatedAnnealing::new(10.0, 0.99, 1e-9);
        let mut r = rng();
        let accepted_hot = (0..1000)
            .filter(|_| hot.accept(1.01, 1.0, 1.0, &mut r))
            .count();
        assert!(
            accepted_hot > 900,
            "hot SA should accept almost everything, got {accepted_hot}"
        );

        let mut cold = SimulatedAnnealing::new(1e-9, 0.99, 1e-12);
        let accepted_cold = (0..1000)
            .filter(|_| cold.accept(1.01, 1.0, 1.0, &mut r))
            .count();
        assert_eq!(accepted_cold, 0, "cold SA should reject all worsenings");
    }

    #[test]
    fn sa_cooling_reaches_floor() {
        let mut sa = SimulatedAnnealing::new(1.0, 0.5, 0.01);
        for _ in 0..100 {
            sa.step();
        }
        assert_eq!(sa.temperature(), 0.01);
    }

    #[test]
    fn rrt_band_semantics() {
        let mut rrt = RecordToRecord::new(0.10);
        let mut r = rng();
        assert!(rrt.accept(1.05, 2.0, 1.0, &mut r)); // within 10% of record
        assert!(!rrt.accept(1.2, 2.0, 1.0, &mut r)); // outside band
        assert!(rrt.accept(0.9, 2.0, 1.0, &mut r)); // better than record
    }

    #[test]
    fn fresh_resets_schedule() {
        let mut sa = SimulatedAnnealing::new(1.0, 0.5, 1e-9);
        sa.step();
        sa.step();
        assert!(sa.temperature() < 1.0);
        let fresh = sa.fresh();
        assert_eq!(fresh.name(), "simulated-annealing");
    }

    #[test]
    fn for_normalized_loads_cools_over_run() {
        let mut sa = SimulatedAnnealing::for_normalized_loads(1000);
        let start = sa.temperature();
        for _ in 0..1000 {
            sa.step();
        }
        assert!(sa.temperature() < start * 1e-3);
    }
}
