//! Adaptive operator selection (the "A" in ALNS).
//!
//! Operators are drawn by roulette wheel over positive weights. After each
//! segment of iterations, weights are smoothed toward the scores the
//! operators earned in that segment (Ropke & Pisinger's scheme): finding a
//! new global best scores highest, improving the incumbent scores medium,
//! merely being accepted scores low, rejection scores zero.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::Serialize;

/// Outcome of one iteration, used to credit the operators involved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IterationOutcome {
    /// Candidate became the new global best.
    NewBest,
    /// Candidate improved on the incumbent (but not the best).
    Improved,
    /// Candidate was accepted without improving.
    Accepted,
    /// Candidate was rejected or the repair failed.
    Rejected,
}

impl IterationOutcome {
    fn score(self) -> f64 {
        match self {
            IterationOutcome::NewBest => 9.0,
            IterationOutcome::Improved => 4.0,
            IterationOutcome::Accepted => 1.0,
            IterationOutcome::Rejected => 0.0,
        }
    }
}

/// Roulette-wheel weights over `n` operators with segment-wise smoothing.
#[derive(Clone, Debug, Serialize)]
pub struct OperatorWeights {
    weights: Vec<f64>,
    segment_scores: Vec<f64>,
    segment_uses: Vec<u64>,
    total_uses: Vec<u64>,
    total_best: Vec<u64>,
    /// Smoothing factor: `w ← ρ·w + (1−ρ)·segment_score_per_use`.
    rho: f64,
    /// Iterations per weight-update segment.
    segment_len: u64,
    since_update: u64,
}

impl OperatorWeights {
    /// Uniform initial weights over `n` operators.
    ///
    /// # Panics
    /// If `n == 0`, `rho ∉ [0,1]`, or `segment_len == 0`.
    pub fn new(n: usize, rho: f64, segment_len: u64) -> Self {
        assert!(n > 0, "need at least one operator");
        assert!((0.0..=1.0).contains(&rho));
        assert!(segment_len > 0);
        Self {
            weights: vec![1.0; n],
            segment_scores: vec![0.0; n],
            segment_uses: vec![0; n],
            total_uses: vec![0; n],
            total_best: vec![0; n],
            rho,
            segment_len,
            since_update: 0,
        }
    }

    /// Number of operators tracked.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when no operators are tracked (never — kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Draws an operator index proportionally to current weights.
    pub fn pick(&self, rng: &mut StdRng) -> usize {
        let total: f64 = self.weights.iter().sum();
        let mut x = rng.random::<f64>() * total;
        for (i, w) in self.weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        self.weights.len() - 1
    }

    /// Credits operator `i` with the outcome of the iteration it produced,
    /// and advances the segment clock.
    pub fn record(&mut self, i: usize, outcome: IterationOutcome) {
        self.segment_scores[i] += outcome.score();
        self.segment_uses[i] += 1;
        self.total_uses[i] += 1;
        if outcome == IterationOutcome::NewBest {
            self.total_best[i] += 1;
        }
        self.since_update += 1;
        if self.since_update >= self.segment_len {
            self.apply_segment();
        }
    }

    fn apply_segment(&mut self) {
        for i in 0..self.weights.len() {
            if self.segment_uses[i] > 0 {
                let earned = self.segment_scores[i] / self.segment_uses[i] as f64;
                self.weights[i] = self.rho * self.weights[i] + (1.0 - self.rho) * earned;
                // Keep every operator drawable: weight floor.
                self.weights[i] = self.weights[i].max(0.05);
            }
            self.segment_scores[i] = 0.0;
            self.segment_uses[i] = 0;
        }
        self.since_update = 0;
    }

    /// Current weight of operator `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Lifetime number of times operator `i` was drawn.
    pub fn uses(&self, i: usize) -> u64 {
        self.total_uses[i]
    }

    /// Lifetime number of global bests operator `i` produced.
    pub fn bests(&self, i: usize) -> u64 {
        self.total_best[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pick_covers_all_operators() {
        let w = OperatorWeights::new(4, 0.8, 50);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[w.pick(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn successful_operator_gains_weight() {
        let mut w = OperatorWeights::new(2, 0.5, 10);
        for _ in 0..10 {
            // Alternate: op 0 always finds new bests, op 1 always rejected.
            w.record(0, IterationOutcome::NewBest);
            w.record(1, IterationOutcome::Rejected);
        }
        assert!(
            w.weight(0) > w.weight(1),
            "op0={} op1={}",
            w.weight(0),
            w.weight(1)
        );
    }

    #[test]
    fn weight_floor_keeps_losers_drawable() {
        let mut w = OperatorWeights::new(2, 0.0, 2);
        for _ in 0..100 {
            w.record(0, IterationOutcome::NewBest);
            w.record(1, IterationOutcome::Rejected);
        }
        assert!(w.weight(1) >= 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        let picked1 = (0..20_000).filter(|_| w.pick(&mut rng) == 1).count();
        assert!(picked1 > 0, "floored operator must still be drawn");
    }

    #[test]
    fn biased_weights_bias_the_draw() {
        let mut w = OperatorWeights::new(2, 0.0, 1);
        // One segment: op 0 earns the max score.
        w.record(0, IterationOutcome::NewBest);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let zero = (0..n).filter(|_| w.pick(&mut rng) == 0).count();
        // Weights are 9.0 vs 1.0 → expected hit rate 0.9.
        assert!(zero as f64 / n as f64 > 0.85, "got {zero}/{n}");
    }

    #[test]
    fn counters_accumulate() {
        let mut w = OperatorWeights::new(1, 0.8, 100);
        w.record(0, IterationOutcome::NewBest);
        w.record(0, IterationOutcome::Accepted);
        assert_eq!(w.uses(0), 2);
        assert_eq!(w.bests(0), 1);
    }

    #[test]
    #[should_panic]
    fn zero_operators_panics() {
        OperatorWeights::new(0, 0.8, 10);
    }

    #[test]
    fn outcome_scores_are_ordered() {
        assert!(IterationOutcome::NewBest.score() > IterationOutcome::Improved.score());
        assert!(IterationOutcome::Improved.score() > IterationOutcome::Accepted.score());
        assert!(IterationOutcome::Accepted.score() > IterationOutcome::Rejected.score());
    }
}
