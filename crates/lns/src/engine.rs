//! The ALNS iteration engine.

use crate::accept::Acceptance;
use crate::problem::{
    Destroy, DestroyInPlace, LnsProblem, LnsProblemInPlace, Repair, RepairInPlace,
};
use crate::weights::{IterationOutcome, OperatorWeights};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rex_obs::Recorder;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Human-readable outcome label for trace events. `cause` refines
/// [`IterationOutcome::Rejected`], which conflates acceptance rejections
/// with repair failures and infeasible candidates.
fn outcome_label(outcome: IterationOutcome, cause: &'static str) -> &'static str {
    match outcome {
        IterationOutcome::NewBest => "new_best",
        IterationOutcome::Improved => "improved",
        IterationOutcome::Accepted => "accepted",
        IterationOutcome::Rejected => cause,
    }
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct LnsConfig {
    /// Maximum number of destroy/repair iterations.
    pub max_iters: u64,
    /// Optional wall-clock budget; checked every 64 iterations.
    pub time_limit: Option<Duration>,
    /// Destroy intensity is drawn uniformly from this `(min, max)` range
    /// each iteration (interpreted by the destroy operators, typically as
    /// the fraction of elements to remove).
    pub intensity: (f64, f64),
    /// ALNS weight-smoothing factor ρ (see [`OperatorWeights`]).
    pub rho: f64,
    /// Iterations per ALNS weight-update segment.
    pub segment_len: u64,
    /// Record the best-objective trajectory (for convergence plots).
    pub log_trajectory: bool,
}

impl Default for LnsConfig {
    fn default() -> Self {
        Self {
            max_iters: 5_000,
            time_limit: None,
            intensity: (0.05, 0.35),
            rho: 0.8,
            segment_len: 100,
            log_trajectory: false,
        }
    }
}

/// One point of the best-objective trajectory.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct TrajectoryPoint {
    /// Iteration at which the best improved.
    pub iteration: u64,
    /// Wall-clock seconds since the run started.
    pub elapsed_secs: f64,
    /// New best objective value.
    pub objective: f64,
}

/// Per-operator usage statistics.
#[derive(Clone, Debug, Serialize)]
pub struct OperatorStat {
    /// Operator name.
    pub name: String,
    /// Times the operator was drawn.
    pub uses: u64,
    /// Global bests the operator produced.
    pub bests: u64,
    /// Final adaptive weight.
    pub weight: f64,
}

/// Aggregate statistics of a finished search.
#[derive(Clone, Debug, Default, Serialize)]
pub struct EngineStats {
    /// Candidates accepted as the new incumbent.
    pub accepted: u64,
    /// Candidates rejected by the acceptance criterion.
    pub rejected: u64,
    /// Iterations where the repair operator returned no solution.
    pub repair_failures: u64,
    /// Candidates rejected because they violated hard constraints.
    pub infeasible: u64,
    /// Candidates that strictly improved the incumbent.
    pub improved: u64,
    /// Times a new global best was found.
    pub new_bests: u64,
    /// Times a candidate beat the best objective but was refused by the
    /// problem's `accept_best` gate (e.g. SRA's plannability check).
    pub best_gate_rejections: u64,
    /// Destroy-operator statistics (same order as passed to the engine).
    pub destroy_ops: Vec<OperatorStat>,
    /// Repair-operator statistics.
    pub repair_ops: Vec<OperatorStat>,
}

/// Result of a search run.
#[derive(Clone, Debug)]
pub struct SearchOutcome<S> {
    /// Best feasible solution found (never worse than the initial one).
    pub best: S,
    /// Its objective value.
    pub best_objective: f64,
    /// Iterations executed.
    pub iterations: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Usage statistics.
    pub stats: EngineStats,
    /// Best-objective trajectory (empty unless `log_trajectory`).
    pub trajectory: Vec<TrajectoryPoint>,
}

/// The ALNS engine: owns the operator portfolio and acceptance criterion,
/// borrows the problem.
pub struct LnsEngine<'a, P: LnsProblem> {
    problem: &'a P,
    destroys: Vec<Box<dyn Destroy<P>>>,
    repairs: Vec<Box<dyn Repair<P>>>,
    acceptance: Box<dyn Acceptance>,
    config: LnsConfig,
}

impl<'a, P: LnsProblem> LnsEngine<'a, P> {
    /// Creates an engine.
    ///
    /// # Panics
    /// If either operator list is empty, or the intensity range is not
    /// within `(0, 1]` with `min <= max`.
    pub fn new(
        problem: &'a P,
        destroys: Vec<Box<dyn Destroy<P>>>,
        repairs: Vec<Box<dyn Repair<P>>>,
        acceptance: Box<dyn Acceptance>,
        config: LnsConfig,
    ) -> Self {
        assert!(!destroys.is_empty(), "need at least one destroy operator");
        assert!(!repairs.is_empty(), "need at least one repair operator");
        let (lo, hi) = config.intensity;
        assert!(
            lo > 0.0 && hi <= 1.0 && lo <= hi,
            "bad intensity range ({lo}, {hi})"
        );
        Self {
            problem,
            destroys,
            repairs,
            acceptance,
            config,
        }
    }

    /// Runs the search from `initial` (must be feasible) with the given
    /// deterministic seed.
    pub fn run(self, initial: P::Solution, seed: u64) -> SearchOutcome<P::Solution> {
        self.run_recorded(initial, seed, &mut Recorder::noop())
    }

    /// Like [`run`], narrating the search into `rec` when it is recording:
    /// a `("lns", "run")` span around the whole search and one
    /// `("lns", "iter")` point event per iteration (operator pair,
    /// intensity, objective delta, outcome). With a [`Recorder::Noop`] the
    /// only per-iteration cost over [`run`] is one enum-discriminant check.
    ///
    /// Recording never perturbs the search: the RNG, acceptance, and weight
    /// updates are untouched, so the returned [`SearchOutcome`] is
    /// bit-identical with and without tracing.
    ///
    /// [`run`]: LnsEngine::run
    pub fn run_recorded(
        mut self,
        initial: P::Solution,
        seed: u64,
        rec: &mut Recorder,
    ) -> SearchOutcome<P::Solution> {
        assert!(
            self.problem.is_feasible(&initial),
            "LNS must start from a feasible solution"
        );
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dweights = OperatorWeights::new(
            self.destroys.len(),
            self.config.rho,
            self.config.segment_len,
        );
        let mut rweights =
            OperatorWeights::new(self.repairs.len(), self.config.rho, self.config.segment_len);
        let mut stats = EngineStats::default();
        let mut trajectory = Vec::new();

        let mut current = initial.clone();
        let mut f_current = self.problem.objective(&current);
        let mut best = initial;
        let mut f_best = f_current;
        if self.config.log_trajectory {
            trajectory.push(TrajectoryPoint {
                iteration: 0,
                elapsed_secs: 0.0,
                objective: f_best,
            });
        }
        if rec.is_active() {
            rec.set_tick(0);
            rec.span_open(
                "lns",
                "run",
                vec![
                    ("engine", "clone".into()),
                    ("seed", seed.into()),
                    ("max_iters", self.config.max_iters.into()),
                    ("destroys", self.destroys.len().into()),
                    ("repairs", self.repairs.len().into()),
                    ("initial_objective", f_best.into()),
                ],
            );
        }

        let (ilo, ihi) = self.config.intensity;
        let mut iters = 0u64;
        while iters < self.config.max_iters {
            if iters.is_multiple_of(64) {
                if let Some(limit) = self.config.time_limit {
                    if start.elapsed() >= limit {
                        break;
                    }
                }
            }
            iters += 1;

            let di = dweights.pick(&mut rng);
            let ri = rweights.pick(&mut rng);
            let intensity = if ilo < ihi {
                rng.random_range(ilo..ihi)
            } else {
                ilo
            };

            let mut cause = "rejected";
            let mut delta = f64::NAN; // serialized as null when not evaluated
            let partial = self.destroys[di].destroy(self.problem, &current, intensity, &mut rng);
            let outcome = match self.repairs[ri].repair(self.problem, partial, &mut rng) {
                None => {
                    stats.repair_failures += 1;
                    cause = "repair_failed";
                    IterationOutcome::Rejected
                }
                Some(candidate) => {
                    if !self.problem.is_feasible(&candidate) {
                        stats.infeasible += 1;
                        cause = "infeasible";
                        IterationOutcome::Rejected
                    } else {
                        let f_cand = self.problem.objective(&candidate);
                        delta = f_cand - f_current;
                        if self.acceptance.accept(f_cand, f_current, f_best, &mut rng) {
                            stats.accepted += 1;
                            let gate_ok = f_cand < f_best && {
                                let ok = self.problem.accept_best(&candidate);
                                if !ok {
                                    stats.best_gate_rejections += 1;
                                }
                                ok
                            };
                            let outcome = if gate_ok {
                                stats.new_bests += 1;
                                best = candidate.clone();
                                f_best = f_cand;
                                if self.config.log_trajectory {
                                    trajectory.push(TrajectoryPoint {
                                        iteration: iters,
                                        elapsed_secs: start.elapsed().as_secs_f64(),
                                        objective: f_best,
                                    });
                                }
                                IterationOutcome::NewBest
                            } else if f_cand < f_current {
                                stats.improved += 1;
                                IterationOutcome::Improved
                            } else {
                                IterationOutcome::Accepted
                            };
                            current = candidate;
                            f_current = f_cand;
                            outcome
                        } else {
                            stats.rejected += 1;
                            IterationOutcome::Rejected
                        }
                    }
                }
            };
            if rec.is_active() {
                rec.set_tick(iters);
                rec.event(
                    "lns",
                    "iter",
                    vec![
                        ("destroy", self.destroys[di].name().into()),
                        ("repair", self.repairs[ri].name().into()),
                        ("intensity", intensity.into()),
                        ("delta", delta.into()),
                        ("outcome", outcome_label(outcome, cause).into()),
                    ],
                );
                record_outcome_metrics(rec, outcome, cause, delta);
            }
            self.acceptance.step();
            dweights.record(di, outcome);
            rweights.record(ri, outcome);
        }

        if rec.is_active() {
            rec.set_tick(iters);
            rec.span_close(
                "lns",
                "run",
                vec![
                    ("iterations", iters.into()),
                    ("best_objective", f_best.into()),
                    ("accepted", stats.accepted.into()),
                    ("new_bests", stats.new_bests.into()),
                    ("repair_failures", stats.repair_failures.into()),
                    ("infeasible", stats.infeasible.into()),
                ],
            );
        }

        stats.destroy_ops = self
            .destroys
            .iter()
            .enumerate()
            .map(|(i, d)| OperatorStat {
                name: d.name().to_string(),
                uses: dweights.uses(i),
                bests: dweights.bests(i),
                weight: dweights.weight(i),
            })
            .collect();
        stats.repair_ops = self
            .repairs
            .iter()
            .enumerate()
            .map(|(i, r)| OperatorStat {
                name: r.name().to_string(),
                uses: rweights.uses(i),
                bests: rweights.bests(i),
                weight: rweights.weight(i),
            })
            .collect();

        SearchOutcome {
            best,
            best_objective: f_best,
            iterations: iters,
            elapsed: start.elapsed(),
            stats,
            trajectory,
        }
    }
}

/// Bumps the per-outcome counters and the delta histogram. Only called when
/// the recorder is active.
fn record_outcome_metrics(
    rec: &mut Recorder,
    outcome: IterationOutcome,
    cause: &'static str,
    delta: f64,
) {
    rec.add("lns.iterations", 1);
    let counter = match outcome {
        IterationOutcome::NewBest => "lns.new_bests",
        IterationOutcome::Improved => "lns.improved",
        IterationOutcome::Accepted => "lns.accepted",
        IterationOutcome::Rejected => match cause {
            "repair_failed" => "lns.repair_failures",
            "infeasible" => "lns.infeasible",
            _ => "lns.rejected",
        },
    };
    rec.add(counter, 1);
    if delta.is_finite() {
        rec.observe("lns.delta_obj", delta);
    }
}

/// The allocation-free ALNS engine over the in-place edit protocol.
///
/// Same iteration semantics, acceptance handling, statistics invariants
/// (`accepted + rejected + repair_failures + infeasible == iterations`),
/// adaptive weights, trajectory recording, and time-limit behavior as
/// [`LnsEngine`] — but instead of cloning the incumbent each iteration,
/// destroy/repair mutate one working state and the engine **reverts** the
/// recorded edits on rejection and **commits** them on acceptance. The
/// only per-iteration allocation left on the hot path is the solution
/// clone taken when a new global best is recorded.
pub struct InPlaceEngine<'a, P: LnsProblemInPlace> {
    problem: &'a P,
    destroys: Vec<Box<dyn DestroyInPlace<P>>>,
    repairs: Vec<Box<dyn RepairInPlace<P>>>,
    acceptance: Box<dyn Acceptance>,
    config: LnsConfig,
}

impl<'a, P: LnsProblemInPlace> InPlaceEngine<'a, P> {
    /// Creates an engine.
    ///
    /// # Panics
    /// If either operator list is empty, or the intensity range is not
    /// within `(0, 1]` with `min <= max`.
    pub fn new(
        problem: &'a P,
        destroys: Vec<Box<dyn DestroyInPlace<P>>>,
        repairs: Vec<Box<dyn RepairInPlace<P>>>,
        acceptance: Box<dyn Acceptance>,
        config: LnsConfig,
    ) -> Self {
        assert!(!destroys.is_empty(), "need at least one destroy operator");
        assert!(!repairs.is_empty(), "need at least one repair operator");
        let (lo, hi) = config.intensity;
        assert!(
            lo > 0.0 && hi <= 1.0 && lo <= hi,
            "bad intensity range ({lo}, {hi})"
        );
        Self {
            problem,
            destroys,
            repairs,
            acceptance,
            config,
        }
    }

    /// Runs the search from `initial` (must be feasible) with the given
    /// deterministic seed.
    pub fn run(self, initial: P::Solution, seed: u64) -> SearchOutcome<P::Solution> {
        self.run_recorded(initial, seed, &mut Recorder::noop())
    }

    /// Like [`run`], narrating the search into `rec` when it is recording.
    ///
    /// On top of the clone engine's per-iteration events this also reports
    /// the in-place protocol: destroy size and undo-log depth per iteration
    /// (via the [`LnsProblemInPlace`] observability hooks) and a
    /// `("lns", "resync")` event whenever `commit` performs a full cache
    /// resynchronization. With a [`Recorder::Noop`] the only per-iteration
    /// cost over [`run`] is one enum-discriminant check — the hook methods
    /// are not even called.
    ///
    /// Recording never perturbs the search: the RNG, acceptance, and weight
    /// updates are untouched, so the returned [`SearchOutcome`] is
    /// bit-identical with and without tracing.
    ///
    /// [`run`]: InPlaceEngine::run
    pub fn run_recorded(
        mut self,
        initial: P::Solution,
        seed: u64,
        rec: &mut Recorder,
    ) -> SearchOutcome<P::Solution> {
        assert!(
            self.problem.is_feasible(&initial),
            "LNS must start from a feasible solution"
        );
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dweights = OperatorWeights::new(
            self.destroys.len(),
            self.config.rho,
            self.config.segment_len,
        );
        let mut rweights =
            OperatorWeights::new(self.repairs.len(), self.config.rho, self.config.segment_len);
        let mut stats = EngineStats::default();
        let mut trajectory = Vec::new();

        let mut best = initial.clone();
        let mut state = self.problem.make_state(initial);
        let mut f_current = self.problem.state_objective(&mut state);
        let mut f_best = f_current;
        if self.config.log_trajectory {
            trajectory.push(TrajectoryPoint {
                iteration: 0,
                elapsed_secs: 0.0,
                objective: f_best,
            });
        }
        let mut last_resyncs = 0u64;
        if rec.is_active() {
            rec.set_tick(0);
            rec.span_open(
                "lns",
                "run",
                vec![
                    ("engine", "in_place".into()),
                    ("seed", seed.into()),
                    ("max_iters", self.config.max_iters.into()),
                    ("destroys", self.destroys.len().into()),
                    ("repairs", self.repairs.len().into()),
                    ("initial_objective", f_best.into()),
                ],
            );
            last_resyncs = self.problem.state_resyncs(&state);
        }

        let (ilo, ihi) = self.config.intensity;
        let mut iters = 0u64;
        while iters < self.config.max_iters {
            if iters.is_multiple_of(64) {
                if let Some(limit) = self.config.time_limit {
                    if start.elapsed() >= limit {
                        break;
                    }
                }
            }
            iters += 1;

            let di = dweights.pick(&mut rng);
            let ri = rweights.pick(&mut rng);
            let intensity = if ilo < ihi {
                rng.random_range(ilo..ihi)
            } else {
                ilo
            };

            let recording = rec.is_active();
            let mut cause = "rejected";
            let mut delta = f64::NAN; // serialized as null when not evaluated
            self.destroys[di].destroy(self.problem, &mut state, intensity, &mut rng);
            let destroyed = if recording {
                self.problem.state_destroyed(&state)
            } else {
                0
            };
            let repaired = self.repairs[ri].repair(self.problem, &mut state, &mut rng);
            let undo_depth = if recording {
                self.problem.state_undo_depth(&state)
            } else {
                0
            };
            let outcome = if !repaired {
                self.problem.revert(&mut state);
                stats.repair_failures += 1;
                cause = "repair_failed";
                IterationOutcome::Rejected
            } else if !self.problem.state_feasible(&state) {
                self.problem.revert(&mut state);
                stats.infeasible += 1;
                cause = "infeasible";
                IterationOutcome::Rejected
            } else {
                let f_cand = self.problem.state_objective(&mut state);
                delta = f_cand - f_current;
                if self.acceptance.accept(f_cand, f_current, f_best, &mut rng) {
                    stats.accepted += 1;
                    let gate_ok = f_cand < f_best && {
                        let ok = self.problem.state_accept_best(&state);
                        if !ok {
                            stats.best_gate_rejections += 1;
                        }
                        ok
                    };
                    let outcome = if gate_ok {
                        stats.new_bests += 1;
                        best = self.problem.snapshot(&state);
                        f_best = f_cand;
                        if self.config.log_trajectory {
                            trajectory.push(TrajectoryPoint {
                                iteration: iters,
                                elapsed_secs: start.elapsed().as_secs_f64(),
                                objective: f_best,
                            });
                        }
                        IterationOutcome::NewBest
                    } else if f_cand < f_current {
                        stats.improved += 1;
                        IterationOutcome::Improved
                    } else {
                        IterationOutcome::Accepted
                    };
                    self.problem.commit(&mut state);
                    f_current = f_cand;
                    outcome
                } else {
                    self.problem.revert(&mut state);
                    stats.rejected += 1;
                    IterationOutcome::Rejected
                }
            };
            if recording {
                rec.set_tick(iters);
                rec.event(
                    "lns",
                    "iter",
                    vec![
                        ("destroy", self.destroys[di].name().into()),
                        ("repair", self.repairs[ri].name().into()),
                        ("intensity", intensity.into()),
                        ("destroyed", destroyed.into()),
                        ("undo_depth", undo_depth.into()),
                        ("delta", delta.into()),
                        ("outcome", outcome_label(outcome, cause).into()),
                    ],
                );
                record_outcome_metrics(rec, outcome, cause, delta);
                let resyncs = self.problem.state_resyncs(&state);
                if resyncs != last_resyncs {
                    rec.event("lns", "resync", vec![("total", resyncs.into())]);
                    rec.add("lns.resyncs", resyncs - last_resyncs);
                    last_resyncs = resyncs;
                }
            }
            self.acceptance.step();
            dweights.record(di, outcome);
            rweights.record(ri, outcome);
        }

        if rec.is_active() {
            rec.set_tick(iters);
            rec.span_close(
                "lns",
                "run",
                vec![
                    ("iterations", iters.into()),
                    ("best_objective", f_best.into()),
                    ("accepted", stats.accepted.into()),
                    ("new_bests", stats.new_bests.into()),
                    ("repair_failures", stats.repair_failures.into()),
                    ("infeasible", stats.infeasible.into()),
                ],
            );
        }

        stats.destroy_ops = self
            .destroys
            .iter()
            .enumerate()
            .map(|(i, d)| OperatorStat {
                name: d.name().to_string(),
                uses: dweights.uses(i),
                bests: dweights.bests(i),
                weight: dweights.weight(i),
            })
            .collect();
        stats.repair_ops = self
            .repairs
            .iter()
            .enumerate()
            .map(|(i, r)| OperatorStat {
                name: r.name().to_string(),
                uses: rweights.uses(i),
                bests: rweights.bests(i),
                weight: rweights.weight(i),
            })
            .collect();

        SearchOutcome {
            best,
            best_objective: f_best,
            iterations: iters,
            elapsed: start.elapsed(),
            stats,
            trajectory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accept::{HillClimb, SimulatedAnnealing};
    use crate::toy::{
        GreedyInsert, GreedyInsertInPlace, PartitionProblem, RandomRemove, RandomRemoveInPlace,
        WorstBinRemove, WorstBinRemoveInPlace,
    };

    fn engine_on(problem: &PartitionProblem, iters: u64) -> LnsEngine<'_, PartitionProblem> {
        LnsEngine::new(
            problem,
            vec![Box::new(RandomRemove), Box::new(WorstBinRemove)],
            vec![Box::new(GreedyInsert)],
            Box::new(SimulatedAnnealing::for_normalized_loads(iters as usize)),
            LnsConfig {
                max_iters: iters,
                log_trajectory: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn improves_a_bad_partition() {
        let problem = PartitionProblem::random(40, 4, 123);
        let initial = problem.all_in_first_bin();
        let f0 = problem.objective(&initial);
        let out = engine_on(&problem, 3_000).run(initial, 7);
        assert!(
            out.best_objective < f0 * 0.5,
            "f0={f0} best={}",
            out.best_objective
        );
        assert!(problem.is_feasible(&out.best));
    }

    #[test]
    fn result_never_worse_than_initial() {
        for seed in 0..5 {
            let problem = PartitionProblem::random(20, 3, seed);
            let initial = problem.all_in_first_bin();
            let f0 = problem.objective(&initial);
            let out = engine_on(&problem, 200).run(initial, seed);
            assert!(out.best_objective <= f0 + 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = PartitionProblem::random(30, 3, 5);
        let initial = problem.all_in_first_bin();
        let a = engine_on(&problem, 500).run(initial.clone(), 99);
        let b = engine_on(&problem, 500).run(initial, 99);
        assert_eq!(a.best_objective, b.best_objective);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.stats.accepted, b.stats.accepted);
    }

    #[test]
    fn trajectory_is_monotone_decreasing() {
        let problem = PartitionProblem::random(40, 4, 11);
        let out = engine_on(&problem, 2_000).run(problem.all_in_first_bin(), 3);
        assert!(!out.trajectory.is_empty());
        for w in out.trajectory.windows(2) {
            assert!(w[1].objective < w[0].objective);
            assert!(w[1].iteration >= w[0].iteration);
        }
    }

    #[test]
    fn stats_account_for_all_iterations() {
        let problem = PartitionProblem::random(25, 3, 2);
        let out = engine_on(&problem, 1_000).run(problem.all_in_first_bin(), 4);
        let s = &out.stats;
        assert_eq!(
            s.accepted + s.rejected + s.repair_failures + s.infeasible,
            out.iterations
        );
        let uses: u64 = s.destroy_ops.iter().map(|o| o.uses).sum();
        assert_eq!(uses, out.iterations);
        assert_eq!(s.destroy_ops.len(), 2);
        assert_eq!(s.repair_ops.len(), 1);
        assert_eq!(s.repair_ops[0].name, "greedy-insert");
    }

    #[test]
    fn time_limit_stops_early() {
        let problem = PartitionProblem::random(50, 4, 8);
        let engine = LnsEngine::new(
            &problem,
            vec![Box::new(RandomRemove) as Box<dyn Destroy<PartitionProblem>>],
            vec![Box::new(GreedyInsert) as Box<dyn Repair<PartitionProblem>>],
            Box::new(HillClimb),
            LnsConfig {
                max_iters: u64::MAX / 2,
                time_limit: Some(Duration::from_millis(50)),
                ..Default::default()
            },
        );
        let start = Instant::now();
        let out = engine.run(problem.all_in_first_bin(), 1);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(out.iterations > 0);
    }

    #[test]
    fn accept_best_gate_filters_bests() {
        /// Wraps the toy problem, refusing any best with an odd bin for
        /// item 0 — the engine must then keep the best among even-bin
        /// solutions only.
        struct Gated(PartitionProblem);
        impl crate::problem::LnsProblem for Gated {
            type Solution = Vec<usize>;
            type Partial = (Vec<usize>, Vec<usize>);
            fn objective(&self, s: &Vec<usize>) -> f64 {
                self.0.objective(s)
            }
            fn is_feasible(&self, s: &Vec<usize>) -> bool {
                self.0.is_feasible(s)
            }
            fn accept_best(&self, s: &Vec<usize>) -> bool {
                s[0].is_multiple_of(2)
            }
        }
        struct D2;
        impl crate::problem::Destroy<Gated> for D2 {
            fn name(&self) -> &str {
                "d"
            }
            fn destroy(
                &self,
                p: &Gated,
                sol: &Vec<usize>,
                i: f64,
                rng: &mut rand::rngs::StdRng,
            ) -> (Vec<usize>, Vec<usize>) {
                RandomRemove.destroy(&p.0, sol, i, rng)
            }
        }
        struct R2;
        impl crate::problem::Repair<Gated> for R2 {
            fn name(&self) -> &str {
                "r"
            }
            fn repair(
                &self,
                p: &Gated,
                partial: (Vec<usize>, Vec<usize>),
                rng: &mut rand::rngs::StdRng,
            ) -> Option<Vec<usize>> {
                GreedyInsert.repair(&p.0, partial, rng)
            }
        }
        let gated = Gated(PartitionProblem::random(30, 3, 4));
        let engine = LnsEngine::new(
            &gated,
            vec![Box::new(D2) as Box<dyn Destroy<Gated>>],
            vec![Box::new(R2) as Box<dyn Repair<Gated>>],
            Box::new(SimulatedAnnealing::for_normalized_loads(1_000)),
            LnsConfig {
                max_iters: 1_000,
                ..Default::default()
            },
        );
        let out = engine.run(gated.0.all_in_first_bin(), 6);
        assert_eq!(out.best[0] % 2, 0, "gated best must satisfy accept_best");
    }

    #[test]
    #[should_panic]
    fn rejects_empty_operator_lists() {
        let problem = PartitionProblem::random(5, 2, 1);
        let _ = LnsEngine::new(
            &problem,
            Vec::new(),
            vec![Box::new(GreedyInsert) as Box<dyn Repair<PartitionProblem>>],
            Box::new(HillClimb),
            LnsConfig::default(),
        );
    }

    #[test]
    #[should_panic]
    fn rejects_infeasible_start() {
        let problem = PartitionProblem::random(5, 2, 1);
        let bad = problem.infeasible_solution();
        let engine = LnsEngine::new(
            &problem,
            vec![Box::new(RandomRemove) as Box<dyn Destroy<PartitionProblem>>],
            vec![Box::new(GreedyInsert) as Box<dyn Repair<PartitionProblem>>],
            Box::new(HillClimb),
            LnsConfig::default(),
        );
        let _ = engine.run(bad, 0);
    }

    fn in_place_engine_on(
        problem: &PartitionProblem,
        iters: u64,
    ) -> InPlaceEngine<'_, PartitionProblem> {
        InPlaceEngine::new(
            problem,
            vec![
                Box::new(RandomRemoveInPlace),
                Box::new(WorstBinRemoveInPlace),
            ],
            vec![Box::new(GreedyInsertInPlace)],
            Box::new(SimulatedAnnealing::for_normalized_loads(iters as usize)),
            LnsConfig {
                max_iters: iters,
                log_trajectory: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn in_place_improves_a_bad_partition() {
        let problem = PartitionProblem::random(40, 4, 123);
        let initial = problem.all_in_first_bin();
        let f0 = problem.objective(&initial);
        let out = in_place_engine_on(&problem, 3_000).run(initial, 7);
        assert!(
            out.best_objective < f0 * 0.5,
            "f0={f0} best={}",
            out.best_objective
        );
        assert!(problem.is_feasible(&out.best));
        // The returned best objective must match a fresh full evaluation of
        // the returned solution (delta caches cannot leak into the result).
        assert!((problem.objective(&out.best) - out.best_objective).abs() < 1e-9);
    }

    #[test]
    fn in_place_deterministic_given_seed() {
        let problem = PartitionProblem::random(30, 3, 5);
        let initial = problem.all_in_first_bin();
        let a = in_place_engine_on(&problem, 500).run(initial.clone(), 99);
        let b = in_place_engine_on(&problem, 500).run(initial, 99);
        assert_eq!(a.best_objective, b.best_objective);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.stats.accepted, b.stats.accepted);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn in_place_stats_account_for_all_iterations() {
        let problem = PartitionProblem::random(25, 3, 2);
        let out = in_place_engine_on(&problem, 1_000).run(problem.all_in_first_bin(), 4);
        let s = &out.stats;
        assert_eq!(
            s.accepted + s.rejected + s.repair_failures + s.infeasible,
            out.iterations
        );
        let uses: u64 = s.destroy_ops.iter().map(|o| o.uses).sum();
        assert_eq!(uses, out.iterations);
    }

    #[test]
    fn in_place_matches_clone_based_quality() {
        // Not bit-identical (delta evaluation rounds differently on
        // acceptance ties), but the two hot paths explore the same
        // neighborhoods and must land in the same quality band.
        let problem = PartitionProblem::random(40, 4, 9);
        let initial = problem.all_in_first_bin();
        let cloned = engine_on(&problem, 3_000).run(initial.clone(), 17);
        let in_place = in_place_engine_on(&problem, 3_000).run(initial, 17);
        assert!(
            (cloned.best_objective - in_place.best_objective).abs() < 0.2,
            "clone {} vs in-place {}",
            cloned.best_objective,
            in_place.best_objective
        );
    }

    #[test]
    fn in_place_result_never_worse_than_initial() {
        for seed in 0..5 {
            let problem = PartitionProblem::random(20, 3, seed);
            let initial = problem.all_in_first_bin();
            let f0 = problem.objective(&initial);
            let out = in_place_engine_on(&problem, 200).run(initial, seed);
            assert!(out.best_objective <= f0 + 1e-12);
        }
    }

    #[test]
    fn in_place_trajectory_is_monotone_decreasing() {
        let problem = PartitionProblem::random(40, 4, 11);
        let out = in_place_engine_on(&problem, 2_000).run(problem.all_in_first_bin(), 3);
        assert!(!out.trajectory.is_empty());
        for w in out.trajectory.windows(2) {
            assert!(w[1].objective < w[0].objective);
            assert!(w[1].iteration >= w[0].iteration);
        }
    }

    #[test]
    #[should_panic]
    fn in_place_rejects_infeasible_start() {
        let problem = PartitionProblem::random(5, 2, 1);
        let bad = problem.infeasible_solution();
        let engine = in_place_engine_on(&problem, 10);
        let _ = engine.run(bad, 0);
    }

    #[test]
    fn recording_does_not_perturb_the_search() {
        let problem = PartitionProblem::random(30, 3, 5);
        let initial = problem.all_in_first_bin();
        let plain = engine_on(&problem, 500).run(initial.clone(), 99);
        let mut rec = Recorder::active();
        let traced = engine_on(&problem, 500).run_recorded(initial.clone(), 99, &mut rec);
        assert_eq!(plain.best_objective, traced.best_objective);
        assert_eq!(plain.iterations, traced.iterations);
        assert_eq!(plain.stats.accepted, traced.stats.accepted);
        assert_eq!(plain.best, traced.best);

        let plain = in_place_engine_on(&problem, 500).run(initial.clone(), 99);
        let mut rec = Recorder::active();
        let traced = in_place_engine_on(&problem, 500).run_recorded(initial, 99, &mut rec);
        assert_eq!(plain.best_objective, traced.best_objective);
        assert_eq!(plain.iterations, traced.iterations);
        assert_eq!(plain.stats.accepted, traced.stats.accepted);
        assert_eq!(plain.best, traced.best);
    }

    #[test]
    fn recorded_run_narrates_every_iteration() {
        let problem = PartitionProblem::random(30, 3, 5);
        let initial = problem.all_in_first_bin();
        let mut rec = Recorder::active();
        let out = in_place_engine_on(&problem, 300).run_recorded(initial, 42, &mut rec);
        assert_eq!(rec.counter("lns.iterations"), out.iterations);
        assert_eq!(rec.counter("lns.new_bests"), out.stats.new_bests);
        assert_eq!(rec.open_spans(), 0, "run span must be closed");
        let iter_events = rec
            .events()
            .iter()
            .filter(|e| e.name == "iter" && e.layer == "lns")
            .count();
        assert_eq!(iter_events as u64, out.iterations);
        // One run-span pair wraps everything.
        assert!(matches!(rec.events()[0].kind, rex_obs::EventKind::SpanOpen));
        assert_eq!(rec.events()[0].name, "run");
        assert_eq!(rec.events().last().unwrap().name, "run");
    }

    #[test]
    fn noop_recorder_stays_silent() {
        let problem = PartitionProblem::random(20, 3, 1);
        let initial = problem.all_in_first_bin();
        let mut rec = Recorder::noop();
        let _ = in_place_engine_on(&problem, 100).run_recorded(initial, 7, &mut rec);
        assert!(!rec.is_active());
        assert!(rec.events().is_empty());
        assert_eq!(rec.to_jsonl(), "");
    }

    #[test]
    fn recorded_traces_are_byte_identical_across_runs() {
        let problem = PartitionProblem::random(30, 3, 5);
        let initial = problem.all_in_first_bin();
        let mut ra = Recorder::active();
        let _ = in_place_engine_on(&problem, 400).run_recorded(initial.clone(), 13, &mut ra);
        let mut rb = Recorder::active();
        let _ = in_place_engine_on(&problem, 400).run_recorded(initial, 13, &mut rb);
        assert_eq!(ra.to_jsonl(), rb.to_jsonl());
        assert_eq!(ra.summary(), rb.summary());
    }
}
