//! The ALNS iteration engine — **the one spine**.
//!
//! Every solve path in the workspace (serial SRA, the seed portfolio,
//! cooperative decomposed rounds, the runtime controller, benches, the
//! CLI) drives this single [`Engine`] through the
//! [`EditModel`](crate::problem::EditModel) protocol. There is exactly one
//! iteration loop: acceptance policies, adaptive operator weights,
//! budget/termination handling, and `rex-obs` trace events live here and
//! nowhere else.

use crate::accept::Acceptance;
use crate::problem::{DestroyInPlace, EditModel, InPlaceModel, LnsProblemInPlace, RepairInPlace};
use crate::weights::{IterationOutcome, OperatorWeights};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rex_obs::Recorder;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Human-readable outcome label for trace events. `cause` refines
/// [`IterationOutcome::Rejected`], which conflates acceptance rejections
/// with repair failures and infeasible candidates.
fn outcome_label(outcome: IterationOutcome, cause: &'static str) -> &'static str {
    match outcome {
        IterationOutcome::NewBest => "new_best",
        IterationOutcome::Improved => "improved",
        IterationOutcome::Accepted => "accepted",
        IterationOutcome::Rejected => cause,
    }
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct LnsConfig {
    /// Maximum number of destroy/repair iterations.
    pub max_iters: u64,
    /// Optional wall-clock budget; checked every 64 iterations.
    pub time_limit: Option<Duration>,
    /// Destroy intensity is drawn uniformly from this `(min, max)` range
    /// each iteration (interpreted by the destroy operators, typically as
    /// the fraction of elements to remove).
    pub intensity: (f64, f64),
    /// ALNS weight-smoothing factor ρ (see [`OperatorWeights`]).
    pub rho: f64,
    /// Iterations per ALNS weight-update segment.
    pub segment_len: u64,
    /// Record the best-objective trajectory (for convergence plots).
    pub log_trajectory: bool,
}

impl Default for LnsConfig {
    fn default() -> Self {
        Self {
            max_iters: 5_000,
            time_limit: None,
            intensity: (0.05, 0.35),
            rho: 0.8,
            segment_len: 100,
            log_trajectory: false,
        }
    }
}

/// One point of the best-objective trajectory.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct TrajectoryPoint {
    /// Iteration at which the best improved.
    pub iteration: u64,
    /// Wall-clock seconds since the run started.
    pub elapsed_secs: f64,
    /// New best objective value.
    pub objective: f64,
}

/// Per-operator usage statistics.
#[derive(Clone, Debug, Serialize)]
pub struct OperatorStat {
    /// Operator name.
    pub name: String,
    /// Times the operator was drawn.
    pub uses: u64,
    /// Global bests the operator produced.
    pub bests: u64,
    /// Final adaptive weight.
    pub weight: f64,
}

/// Aggregate statistics of a finished search.
#[derive(Clone, Debug, Default, Serialize)]
pub struct EngineStats {
    /// Candidates accepted as the new incumbent.
    pub accepted: u64,
    /// Candidates rejected by the acceptance criterion.
    pub rejected: u64,
    /// Iterations where the repair operator returned no solution.
    pub repair_failures: u64,
    /// Candidates rejected because they violated hard constraints.
    pub infeasible: u64,
    /// Candidates that strictly improved the incumbent.
    pub improved: u64,
    /// Times a new global best was found.
    pub new_bests: u64,
    /// Times a candidate beat the best objective but was refused by the
    /// problem's `accept_best` gate (e.g. SRA's plannability check).
    pub best_gate_rejections: u64,
    /// Destroy-operator statistics (same order as in the model).
    pub destroy_ops: Vec<OperatorStat>,
    /// Repair-operator statistics.
    pub repair_ops: Vec<OperatorStat>,
}

/// Result of a search run.
#[derive(Clone, Debug)]
pub struct SearchOutcome<S> {
    /// Best feasible solution found (never worse than the initial one).
    pub best: S,
    /// Its objective value.
    pub best_objective: f64,
    /// Iterations executed.
    pub iterations: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Usage statistics.
    pub stats: EngineStats,
    /// Best-objective trajectory (empty unless `log_trajectory`).
    pub trajectory: Vec<TrajectoryPoint>,
}

/// The unified ALNS engine: owns an [`EditModel`] (working position +
/// operator portfolio) and an acceptance criterion, and runs the one
/// destroy/repair/accept loop over them.
pub struct Engine<M: EditModel> {
    model: M,
    acceptance: Box<dyn Acceptance>,
    config: LnsConfig,
}

impl<M: EditModel> Engine<M> {
    /// Creates an engine over an already-positioned model.
    ///
    /// # Panics
    /// If either of the model's operator lists is empty, or the intensity
    /// range is not within `(0, 1]` with `min <= max`.
    pub fn new(model: M, acceptance: Box<dyn Acceptance>, config: LnsConfig) -> Self {
        assert!(
            model.destroy_count() > 0,
            "need at least one destroy operator"
        );
        assert!(
            model.repair_count() > 0,
            "need at least one repair operator"
        );
        let (lo, hi) = config.intensity;
        assert!(
            lo > 0.0 && hi <= 1.0 && lo <= hi,
            "bad intensity range ({lo}, {hi})"
        );
        Self {
            model,
            acceptance,
            config,
        }
    }

    /// Runs the search from the model's current position with the given
    /// deterministic seed.
    pub fn run(self, seed: u64) -> SearchOutcome<M::Solution> {
        self.run_recorded(seed, &mut Recorder::noop())
    }

    /// Like [`run`], narrating the search into `rec` when it is recording:
    /// a `("lns", "run")` span around the whole search and one
    /// `("lns", "iter")` point event per iteration (operator pair,
    /// intensity, destroy size, undo-log depth, objective delta, outcome),
    /// plus a `("lns", "resync")` event whenever a commit performs a full
    /// cache resynchronization. With a [`Recorder::Noop`] the only
    /// per-iteration cost over [`run`] is one enum-discriminant check —
    /// the model's observability hooks are not even called.
    ///
    /// Recording never perturbs the search: the RNG, acceptance, and weight
    /// updates are untouched, so the returned [`SearchOutcome`] is
    /// bit-identical with and without tracing.
    ///
    /// [`run`]: Engine::run
    pub fn run_recorded(mut self, seed: u64, rec: &mut Recorder) -> SearchOutcome<M::Solution> {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dweights = OperatorWeights::new(
            self.model.destroy_count(),
            self.config.rho,
            self.config.segment_len,
        );
        let mut rweights = OperatorWeights::new(
            self.model.repair_count(),
            self.config.rho,
            self.config.segment_len,
        );
        let mut stats = EngineStats::default();
        let mut trajectory = Vec::new();

        let mut best = self.model.snapshot();
        let mut f_current = self.model.objective();
        let mut f_best = f_current;
        if self.config.log_trajectory {
            trajectory.push(TrajectoryPoint {
                iteration: 0,
                elapsed_secs: 0.0,
                objective: f_best,
            });
        }
        let mut last_resyncs = 0u64;
        if rec.is_active() {
            rec.set_tick(0);
            rec.span_open(
                "lns",
                "run",
                vec![
                    ("seed", seed.into()),
                    ("max_iters", self.config.max_iters.into()),
                    ("destroys", self.model.destroy_count().into()),
                    ("repairs", self.model.repair_count().into()),
                    ("initial_objective", f_best.into()),
                ],
            );
            last_resyncs = self.model.resyncs();
        }

        let (ilo, ihi) = self.config.intensity;
        let mut iters = 0u64;
        while iters < self.config.max_iters {
            if iters.is_multiple_of(64) {
                if let Some(limit) = self.config.time_limit {
                    if start.elapsed() >= limit {
                        break;
                    }
                }
            }
            iters += 1;

            let di = dweights.pick(&mut rng);
            let ri = rweights.pick(&mut rng);
            let intensity = if ilo < ihi {
                rng.random_range(ilo..ihi)
            } else {
                ilo
            };

            let recording = rec.is_active();
            let mut cause = "rejected";
            let mut delta = f64::NAN; // serialized as null when not evaluated
            self.model.destroy(di, intensity, &mut rng);
            let destroyed = if recording { self.model.destroyed() } else { 0 };
            let repaired = self.model.repair(ri, &mut rng);
            let undo_depth = if recording {
                self.model.undo_depth()
            } else {
                0
            };
            let outcome = if !repaired {
                self.model.revert();
                stats.repair_failures += 1;
                cause = "repair_failed";
                IterationOutcome::Rejected
            } else if !self.model.feasible() {
                self.model.revert();
                stats.infeasible += 1;
                cause = "infeasible";
                IterationOutcome::Rejected
            } else {
                let f_cand = self.model.objective();
                delta = f_cand - f_current;
                if self.acceptance.accept(f_cand, f_current, f_best, &mut rng) {
                    stats.accepted += 1;
                    let gate_ok = f_cand < f_best && {
                        let ok = self.model.accept_best();
                        if !ok {
                            stats.best_gate_rejections += 1;
                        }
                        ok
                    };
                    let outcome = if gate_ok {
                        stats.new_bests += 1;
                        best = self.model.snapshot();
                        f_best = f_cand;
                        if self.config.log_trajectory {
                            trajectory.push(TrajectoryPoint {
                                iteration: iters,
                                elapsed_secs: start.elapsed().as_secs_f64(),
                                objective: f_best,
                            });
                        }
                        IterationOutcome::NewBest
                    } else if f_cand < f_current {
                        stats.improved += 1;
                        IterationOutcome::Improved
                    } else {
                        IterationOutcome::Accepted
                    };
                    self.model.commit();
                    f_current = f_cand;
                    outcome
                } else {
                    self.model.revert();
                    stats.rejected += 1;
                    IterationOutcome::Rejected
                }
            };
            if recording {
                rec.set_tick(iters);
                rec.event(
                    "lns",
                    "iter",
                    vec![
                        ("destroy", self.model.destroy_name(di).into()),
                        ("repair", self.model.repair_name(ri).into()),
                        ("intensity", intensity.into()),
                        ("destroyed", destroyed.into()),
                        ("undo_depth", undo_depth.into()),
                        ("delta", delta.into()),
                        ("outcome", outcome_label(outcome, cause).into()),
                    ],
                );
                record_outcome_metrics(rec, outcome, cause, delta);
                let resyncs = self.model.resyncs();
                if resyncs != last_resyncs {
                    rec.event("lns", "resync", vec![("total", resyncs.into())]);
                    rec.add("lns.resyncs", resyncs - last_resyncs);
                    last_resyncs = resyncs;
                }
            }
            self.acceptance.step();
            dweights.record(di, outcome);
            rweights.record(ri, outcome);
        }

        if rec.is_active() {
            rec.set_tick(iters);
            rec.span_close(
                "lns",
                "run",
                vec![
                    ("iterations", iters.into()),
                    ("best_objective", f_best.into()),
                    ("accepted", stats.accepted.into()),
                    ("new_bests", stats.new_bests.into()),
                    ("repair_failures", stats.repair_failures.into()),
                    ("infeasible", stats.infeasible.into()),
                ],
            );
        }

        stats.destroy_ops = (0..self.model.destroy_count())
            .map(|i| OperatorStat {
                name: self.model.destroy_name(i).to_string(),
                uses: dweights.uses(i),
                bests: dweights.bests(i),
                weight: dweights.weight(i),
            })
            .collect();
        stats.repair_ops = (0..self.model.repair_count())
            .map(|i| OperatorStat {
                name: self.model.repair_name(i).to_string(),
                uses: rweights.uses(i),
                bests: rweights.bests(i),
                weight: rweights.weight(i),
            })
            .collect();

        SearchOutcome {
            best,
            best_objective: f_best,
            iterations: iters,
            elapsed: start.elapsed(),
            stats,
            trajectory,
        }
    }
}

impl<'p, P: LnsProblemInPlace> Engine<InPlaceModel<'p, P>> {
    /// Convenience constructor for the production path: wraps `initial`
    /// into an [`InPlaceModel`] over `problem` and builds the engine.
    ///
    /// # Panics
    /// If `initial` is infeasible, either operator list is empty, or the
    /// intensity range is invalid.
    pub fn in_place(
        problem: &'p P,
        initial: P::Solution,
        destroys: Vec<Box<dyn DestroyInPlace<P>>>,
        repairs: Vec<Box<dyn RepairInPlace<P>>>,
        acceptance: Box<dyn Acceptance>,
        config: LnsConfig,
    ) -> Self {
        Self::new(
            InPlaceModel::new(problem, initial, destroys, repairs),
            acceptance,
            config,
        )
    }
}

/// Bumps the per-outcome counters and the delta histogram. Only called when
/// the recorder is active.
fn record_outcome_metrics(
    rec: &mut Recorder,
    outcome: IterationOutcome,
    cause: &'static str,
    delta: f64,
) {
    rec.add("lns.iterations", 1);
    let counter = match outcome {
        IterationOutcome::NewBest => "lns.new_bests",
        IterationOutcome::Improved => "lns.improved",
        IterationOutcome::Accepted => "lns.accepted",
        IterationOutcome::Rejected => match cause {
            "repair_failed" => "lns.repair_failures",
            "infeasible" => "lns.infeasible",
            _ => "lns.rejected",
        },
    };
    rec.add(counter, 1);
    if delta.is_finite() {
        rec.observe("lns.delta_obj", delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accept::{HillClimb, SimulatedAnnealing};
    use crate::problem::{CloneOracle, LnsProblem};
    use crate::toy::{
        GreedyInsertInPlace, PartitionProblem, PartitionState, RandomRemoveInPlace,
        WorstBinRemoveInPlace,
    };

    fn toy_destroys() -> Vec<Box<dyn DestroyInPlace<PartitionProblem>>> {
        vec![
            Box::new(RandomRemoveInPlace),
            Box::new(WorstBinRemoveInPlace),
        ]
    }

    fn toy_repairs() -> Vec<Box<dyn RepairInPlace<PartitionProblem>>> {
        vec![Box::new(GreedyInsertInPlace)]
    }

    fn engine_on(
        problem: &PartitionProblem,
        initial: Vec<usize>,
        iters: u64,
    ) -> Engine<InPlaceModel<'_, PartitionProblem>> {
        Engine::in_place(
            problem,
            initial,
            toy_destroys(),
            toy_repairs(),
            Box::new(SimulatedAnnealing::for_normalized_loads(iters as usize)),
            LnsConfig {
                max_iters: iters,
                log_trajectory: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn improves_a_bad_partition() {
        let problem = PartitionProblem::random(40, 4, 123);
        let initial = problem.all_in_first_bin();
        let f0 = problem.objective(&initial);
        let out = engine_on(&problem, initial, 3_000).run(7);
        assert!(
            out.best_objective < f0 * 0.5,
            "f0={f0} best={}",
            out.best_objective
        );
        assert!(problem.is_feasible(&out.best));
        // The returned best objective must match a fresh full evaluation of
        // the returned solution (delta caches cannot leak into the result).
        assert!((problem.objective(&out.best) - out.best_objective).abs() < 1e-9);
    }

    #[test]
    fn result_never_worse_than_initial() {
        for seed in 0..5 {
            let problem = PartitionProblem::random(20, 3, seed);
            let initial = problem.all_in_first_bin();
            let f0 = problem.objective(&initial);
            let out = engine_on(&problem, initial, 200).run(seed);
            assert!(out.best_objective <= f0 + 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = PartitionProblem::random(30, 3, 5);
        let initial = problem.all_in_first_bin();
        let a = engine_on(&problem, initial.clone(), 500).run(99);
        let b = engine_on(&problem, initial, 500).run(99);
        assert_eq!(a.best_objective, b.best_objective);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.stats.accepted, b.stats.accepted);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn trajectory_is_monotone_decreasing() {
        let problem = PartitionProblem::random(40, 4, 11);
        let out = engine_on(&problem, problem.all_in_first_bin(), 2_000).run(3);
        assert!(!out.trajectory.is_empty());
        for w in out.trajectory.windows(2) {
            assert!(w[1].objective < w[0].objective);
            assert!(w[1].iteration >= w[0].iteration);
        }
    }

    #[test]
    fn stats_account_for_all_iterations() {
        let problem = PartitionProblem::random(25, 3, 2);
        let out = engine_on(&problem, problem.all_in_first_bin(), 1_000).run(4);
        let s = &out.stats;
        assert_eq!(
            s.accepted + s.rejected + s.repair_failures + s.infeasible,
            out.iterations
        );
        let uses: u64 = s.destroy_ops.iter().map(|o| o.uses).sum();
        assert_eq!(uses, out.iterations);
        assert_eq!(s.destroy_ops.len(), 2);
        assert_eq!(s.repair_ops.len(), 1);
        assert_eq!(s.repair_ops[0].name, "greedy-insert");
    }

    #[test]
    fn time_limit_stops_early() {
        let problem = PartitionProblem::random(50, 4, 8);
        let engine = Engine::in_place(
            &problem,
            problem.all_in_first_bin(),
            vec![Box::new(RandomRemoveInPlace) as Box<dyn DestroyInPlace<PartitionProblem>>],
            toy_repairs(),
            Box::new(HillClimb),
            LnsConfig {
                max_iters: u64::MAX / 2,
                time_limit: Some(Duration::from_millis(50)),
                ..Default::default()
            },
        );
        let start = Instant::now();
        let out = engine.run(1);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(out.iterations > 0);
    }

    #[test]
    fn accept_best_gate_filters_bests() {
        /// Wraps the toy problem, refusing any best with an odd bin for
        /// item 0 — the engine must then keep the best among even-bin
        /// solutions only.
        struct Gated(PartitionProblem);
        impl LnsProblem for Gated {
            type Solution = Vec<usize>;
            fn objective(&self, s: &Vec<usize>) -> f64 {
                self.0.objective(s)
            }
            fn is_feasible(&self, s: &Vec<usize>) -> bool {
                self.0.is_feasible(s)
            }
            fn accept_best(&self, s: &Vec<usize>) -> bool {
                s[0].is_multiple_of(2)
            }
        }
        impl LnsProblemInPlace for Gated {
            type State = PartitionState;
            fn make_state(&self, sol: Vec<usize>) -> PartitionState {
                self.0.make_state(sol)
            }
            fn state_objective(&self, state: &mut PartitionState) -> f64 {
                self.0.state_objective(state)
            }
            fn state_feasible(&self, state: &PartitionState) -> bool {
                self.0.state_feasible(state)
            }
            fn state_accept_best(&self, state: &PartitionState) -> bool {
                self.0.snapshot(state)[0].is_multiple_of(2)
            }
            fn snapshot(&self, state: &PartitionState) -> Vec<usize> {
                self.0.snapshot(state)
            }
            fn revert(&self, state: &mut PartitionState) {
                self.0.revert(state)
            }
            fn commit(&self, state: &mut PartitionState) {
                self.0.commit(state)
            }
        }
        struct D2;
        impl DestroyInPlace<Gated> for D2 {
            fn name(&self) -> &str {
                "d"
            }
            fn destroy(&self, p: &Gated, state: &mut PartitionState, i: f64, rng: &mut StdRng) {
                RandomRemoveInPlace.destroy(&p.0, state, i, rng)
            }
        }
        struct R2;
        impl RepairInPlace<Gated> for R2 {
            fn name(&self) -> &str {
                "r"
            }
            fn repair(&self, p: &Gated, state: &mut PartitionState, rng: &mut StdRng) -> bool {
                GreedyInsertInPlace.repair(&p.0, state, rng)
            }
        }
        let gated = Gated(PartitionProblem::random(30, 3, 4));
        let engine = Engine::in_place(
            &gated,
            gated.0.all_in_first_bin(),
            vec![Box::new(D2) as Box<dyn DestroyInPlace<Gated>>],
            vec![Box::new(R2) as Box<dyn RepairInPlace<Gated>>],
            Box::new(SimulatedAnnealing::for_normalized_loads(1_000)),
            LnsConfig {
                max_iters: 1_000,
                ..Default::default()
            },
        );
        let out = engine.run(6);
        assert_eq!(out.best[0] % 2, 0, "gated best must satisfy accept_best");
        assert!(out.stats.best_gate_rejections > 0, "gate must have fired");
    }

    #[test]
    #[should_panic]
    fn rejects_empty_operator_lists() {
        let problem = PartitionProblem::random(5, 2, 1);
        let _ = Engine::in_place(
            &problem,
            problem.all_in_first_bin(),
            Vec::new(),
            toy_repairs(),
            Box::new(HillClimb),
            LnsConfig::default(),
        );
    }

    #[test]
    #[should_panic]
    fn rejects_infeasible_start() {
        let problem = PartitionProblem::random(5, 2, 1);
        let bad = problem.infeasible_solution();
        let _ = Engine::in_place(
            &problem,
            bad,
            toy_destroys(),
            toy_repairs(),
            Box::new(HillClimb),
            LnsConfig::default(),
        );
    }

    #[test]
    fn clone_oracle_matches_in_place_bit_exactly() {
        // The oracle rejects by restoring a saved whole-state clone; the
        // production model rejects by unwinding the undo log. Identical
        // outcomes prove the undo machinery is bit-exact. (The full
        // differential suite, including traces and the parallel drivers,
        // lives in tests/spine_vs_legacy.rs.)
        let problem = PartitionProblem::random(40, 4, 9);
        let initial = problem.all_in_first_bin();
        let cfg = LnsConfig {
            max_iters: 1_500,
            log_trajectory: true,
            ..Default::default()
        };
        let spine = Engine::new(
            InPlaceModel::new(&problem, initial.clone(), toy_destroys(), toy_repairs()),
            Box::new(SimulatedAnnealing::for_normalized_loads(1_500)),
            cfg,
        )
        .run(17);
        let oracle = Engine::new(
            CloneOracle::new(&problem, initial, toy_destroys(), toy_repairs()),
            Box::new(SimulatedAnnealing::for_normalized_loads(1_500)),
            cfg,
        )
        .run(17);
        assert_eq!(spine.best_objective, oracle.best_objective);
        assert_eq!(spine.best, oracle.best);
        assert_eq!(spine.iterations, oracle.iterations);
        assert_eq!(spine.stats.accepted, oracle.stats.accepted);
        assert_eq!(spine.stats.new_bests, oracle.stats.new_bests);
    }

    #[test]
    fn recording_does_not_perturb_the_search() {
        let problem = PartitionProblem::random(30, 3, 5);
        let initial = problem.all_in_first_bin();
        let plain = engine_on(&problem, initial.clone(), 500).run(99);
        let mut rec = Recorder::active();
        let traced = engine_on(&problem, initial, 500).run_recorded(99, &mut rec);
        assert_eq!(plain.best_objective, traced.best_objective);
        assert_eq!(plain.iterations, traced.iterations);
        assert_eq!(plain.stats.accepted, traced.stats.accepted);
        assert_eq!(plain.best, traced.best);
    }

    #[test]
    fn recorded_run_narrates_every_iteration() {
        let problem = PartitionProblem::random(30, 3, 5);
        let initial = problem.all_in_first_bin();
        let mut rec = Recorder::active();
        let out = engine_on(&problem, initial, 300).run_recorded(42, &mut rec);
        assert_eq!(rec.counter("lns.iterations"), out.iterations);
        assert_eq!(rec.counter("lns.new_bests"), out.stats.new_bests);
        assert_eq!(rec.open_spans(), 0, "run span must be closed");
        let iter_events = rec
            .events()
            .iter()
            .filter(|e| e.name == "iter" && e.layer == "lns")
            .count();
        assert_eq!(iter_events as u64, out.iterations);
        // One run-span pair wraps everything.
        assert!(matches!(rec.events()[0].kind, rex_obs::EventKind::SpanOpen));
        assert_eq!(rec.events()[0].name, "run");
        assert_eq!(rec.events().last().unwrap().name, "run");
    }

    #[test]
    fn noop_recorder_stays_silent() {
        let problem = PartitionProblem::random(20, 3, 1);
        let initial = problem.all_in_first_bin();
        let mut rec = Recorder::noop();
        let _ = engine_on(&problem, initial, 100).run_recorded(7, &mut rec);
        assert!(!rec.is_active());
        assert!(rec.events().is_empty());
        assert_eq!(rec.to_jsonl(), "");
    }

    #[test]
    fn recorded_traces_are_byte_identical_across_runs() {
        let problem = PartitionProblem::random(30, 3, 5);
        let initial = problem.all_in_first_bin();
        let mut ra = Recorder::active();
        let _ = engine_on(&problem, initial.clone(), 400).run_recorded(13, &mut ra);
        let mut rb = Recorder::active();
        let _ = engine_on(&problem, initial, 400).run_recorded(13, &mut rb);
        assert_eq!(ra.to_jsonl(), rb.to_jsonl());
        assert_eq!(ra.summary(), rb.summary());
    }
}
