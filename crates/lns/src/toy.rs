//! A miniature number-partitioning problem.
//!
//! Assign `n` weighted items to `k` bins, minimizing the maximum bin sum —
//! the 1-dimensional skeleton of the shard-reassignment problem. It exists
//! so the framework can be tested (and its documentation exemplified)
//! without dragging in the cluster domain. Its [`PartitionState`] derives
//! `Clone`, which is what lets the `spine_vs_legacy` differential suite
//! instantiate the [`crate::problem::CloneOracle`] over it.

use crate::problem::{DestroyInPlace, LnsProblem, LnsProblemInPlace, RepairInPlace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Sentinel bin index marking an unassigned item inside a destroyed state.
const UNASSIGNED: usize = usize::MAX;

/// The problem: items with weights, `bins` bins, minimize the max bin sum.
#[derive(Clone, Debug)]
pub struct PartitionProblem {
    /// Item weights (positive).
    pub items: Vec<f64>,
    /// Number of bins.
    pub bins: usize,
}

impl PartitionProblem {
    /// A random instance with `n` items in `(0.5, 10.5)` and `bins` bins.
    pub fn random(n: usize, bins: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let items = (0..n).map(|_| rng.random_range(0.5..10.5)).collect();
        Self { items, bins }
    }

    /// The pessimal feasible start: everything in bin 0.
    pub fn all_in_first_bin(&self) -> Vec<usize> {
        vec![0; self.items.len()]
    }

    /// An intentionally infeasible solution (for negative tests).
    pub fn infeasible_solution(&self) -> Vec<usize> {
        let mut s = self.all_in_first_bin();
        if let Some(first) = s.first_mut() {
            *first = self.bins; // out of range
        }
        s
    }

    fn bin_sums(&self, sol: &[usize]) -> Vec<f64> {
        let mut sums = vec![0.0; self.bins];
        for (i, &b) in sol.iter().enumerate() {
            if b != UNASSIGNED {
                sums[b] += self.items[i];
            }
        }
        sums
    }
}

impl LnsProblem for PartitionProblem {
    type Solution = Vec<usize>;

    fn objective(&self, sol: &Self::Solution) -> f64 {
        // Normalize by the perfectly balanced value so objectives sit near 1.
        let total: f64 = self.items.iter().sum();
        let ideal = total / self.bins as f64;
        let peak = self.bin_sums(sol).into_iter().fold(0.0, f64::max);
        if ideal > 0.0 {
            peak / ideal
        } else {
            0.0
        }
    }

    fn is_feasible(&self, sol: &Self::Solution) -> bool {
        sol.len() == self.items.len() && sol.iter().all(|&b| b < self.bins)
    }
}

/// In-place search state for [`PartitionProblem`]: the solution plus
/// cached bin sums, the unassigned-item list, and an undo log. Exists to
/// exercise (and document) the in-place edit protocol without the cluster
/// domain. Derives `Clone` (unlike the real SRA state) so the
/// [`crate::problem::CloneOracle`] can snapshot and restore it whole.
#[derive(Clone, Debug)]
pub struct PartitionState {
    /// `sol[i]` = bin of item `i`, or [`UNASSIGNED`].
    sol: Vec<usize>,
    /// Cached bin sums, kept in lockstep with `sol`.
    sums: Vec<f64>,
    /// Items currently unassigned.
    removed: Vec<usize>,
    /// `(item, previous bin)` edits since the last commit.
    undo: Vec<(usize, usize)>,
    /// Bin sums at the last commit; restored verbatim on revert so a
    /// rejected burst leaves the sums bit-identical (f64 `+=`/`-=` does
    /// not cancel exactly).
    sums_base: Vec<f64>,
    /// Whether `sums_base` holds this burst's pre-edit sums.
    dirty: bool,
    /// Commits since the last full recompute of `sums` (drift bound).
    commits_since_resync: u32,
    /// Reusable operator scratch (shuffle order).
    scratch: Vec<usize>,
}

/// Full `sums` recompute every this many commits, bounding float drift.
const TOY_RESYNC_EVERY: u32 = 1024;

impl PartitionState {
    /// The current (possibly partially destroyed) solution.
    pub fn solution(&self) -> &[usize] {
        &self.sol
    }

    /// Cached bin sums.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Items currently unassigned.
    pub fn removed(&self) -> &[usize] {
        &self.removed
    }

    fn mark_dirty(&mut self) {
        if !self.dirty {
            self.sums_base.copy_from_slice(&self.sums);
            self.dirty = true;
        }
    }

    /// Unassigns `item`, recording the edit.
    pub fn remove(&mut self, problem: &PartitionProblem, item: usize) {
        let bin = self.sol[item];
        debug_assert_ne!(bin, UNASSIGNED, "item {item} is already unassigned");
        self.mark_dirty();
        self.undo.push((item, bin));
        self.sums[bin] -= problem.items[item];
        self.sol[item] = UNASSIGNED;
        self.removed.push(item);
    }

    /// Assigns unassigned `item` to `bin`, recording the edit. Does not
    /// touch `removed` — repairs drain that list themselves.
    pub fn insert(&mut self, problem: &PartitionProblem, item: usize, bin: usize) {
        debug_assert_eq!(self.sol[item], UNASSIGNED, "item {item} is not unassigned");
        self.mark_dirty();
        self.undo.push((item, UNASSIGNED));
        self.sums[bin] += problem.items[item];
        self.sol[item] = bin;
    }
}

impl LnsProblemInPlace for PartitionProblem {
    type State = PartitionState;

    fn make_state(&self, sol: Vec<usize>) -> PartitionState {
        let sums = self.bin_sums(&sol);
        PartitionState {
            removed: sol
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b == UNASSIGNED)
                .map(|(i, _)| i)
                .collect(),
            sums_base: sums.clone(),
            sums,
            sol,
            undo: Vec::new(),
            dirty: false,
            commits_since_resync: 0,
            scratch: Vec::new(),
        }
    }

    fn state_objective(&self, state: &mut PartitionState) -> f64 {
        let total: f64 = self.items.iter().sum();
        let ideal = total / self.bins as f64;
        let peak = state.sums.iter().copied().fold(0.0, f64::max);
        if ideal > 0.0 {
            peak / ideal
        } else {
            0.0
        }
    }

    fn state_feasible(&self, state: &PartitionState) -> bool {
        state.removed.is_empty()
    }

    fn snapshot(&self, state: &PartitionState) -> Vec<usize> {
        state.sol.clone()
    }

    fn revert(&self, state: &mut PartitionState) {
        while let Some((item, prev)) = state.undo.pop() {
            state.sol[item] = prev;
        }
        if state.dirty {
            state.sums.copy_from_slice(&state.sums_base);
            state.dirty = false;
        }
        state.removed.clear();
    }

    fn commit(&self, state: &mut PartitionState) {
        debug_assert!(state.removed.is_empty(), "committing an incomplete state");
        state.undo.clear();
        state.dirty = false;
        state.commits_since_resync += 1;
        if state.commits_since_resync >= TOY_RESYNC_EVERY {
            state.sums = self.bin_sums(&state.sol);
            state.commits_since_resync = 0;
        }
    }
}

/// Removes a random `intensity` fraction of items.
#[derive(Clone, Copy, Debug)]
pub struct RandomRemoveInPlace;

impl DestroyInPlace<PartitionProblem> for RandomRemoveInPlace {
    fn name(&self) -> &str {
        "random-remove"
    }

    fn destroy(
        &self,
        problem: &PartitionProblem,
        state: &mut PartitionState,
        intensity: f64,
        rng: &mut StdRng,
    ) {
        let n = problem.items.len();
        let k = ((n as f64 * intensity).ceil() as usize).clamp(1, n);
        let mut order = std::mem::take(&mut state.scratch);
        order.clear();
        order.extend(0..n);
        order.shuffle(rng);
        order.truncate(k);
        for &item in order.iter().take(k) {
            state.remove(problem, item);
        }
        state.scratch = order;
    }
}

/// Empties the currently fullest bin.
#[derive(Clone, Copy, Debug)]
pub struct WorstBinRemoveInPlace;

impl DestroyInPlace<PartitionProblem> for WorstBinRemoveInPlace {
    fn name(&self) -> &str {
        "worst-bin-remove"
    }

    fn destroy(
        &self,
        problem: &PartitionProblem,
        state: &mut PartitionState,
        _intensity: f64,
        _rng: &mut StdRng,
    ) {
        let worst = state
            .sums
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut victims = std::mem::take(&mut state.scratch);
        victims.clear();
        victims.extend(
            state
                .sol
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b == worst)
                .map(|(i, _)| i),
        );
        for &item in &victims {
            state.remove(problem, item);
        }
        state.scratch = victims;
    }
}

/// Reinserts removed items, heaviest first, into the lightest bin.
#[derive(Clone, Copy, Debug)]
pub struct GreedyInsertInPlace;

impl RepairInPlace<PartitionProblem> for GreedyInsertInPlace {
    fn name(&self) -> &str {
        "greedy-insert"
    }

    fn repair(
        &self,
        problem: &PartitionProblem,
        state: &mut PartitionState,
        _rng: &mut StdRng,
    ) -> bool {
        let mut removed = std::mem::take(&mut state.removed);
        removed.sort_by(|&a, &b| problem.items[b].partial_cmp(&problem.items[a]).unwrap());
        for idx in 0..removed.len() {
            let i = removed[idx];
            let lightest = state
                .sums
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(b, _)| b);
            let Some(bin) = lightest else {
                // Hand the unplaced tail back so the state stays coherent
                // for the engine's revert.
                removed.drain(..idx);
                state.removed = removed;
                return false;
            };
            state.insert(problem, i, bin);
        }
        removed.clear();
        state.removed = removed;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_instance_shape() {
        let p = PartitionProblem::random(10, 3, 1);
        assert_eq!(p.items.len(), 10);
        assert!(p.items.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn objective_of_balanced_is_one() {
        let p = PartitionProblem {
            items: vec![1.0, 1.0],
            bins: 2,
        };
        assert!((p.objective(&vec![0, 1]) - 1.0).abs() < 1e-12);
        assert!((p.objective(&vec![0, 0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn feasibility() {
        let p = PartitionProblem::random(4, 2, 1);
        assert!(p.is_feasible(&p.all_in_first_bin()));
        assert!(!p.is_feasible(&p.infeasible_solution()));
        assert!(!p.is_feasible(&vec![0])); // wrong length
    }

    #[test]
    fn random_remove_respects_intensity() {
        let p = PartitionProblem::random(10, 2, 1);
        let mut state = p.make_state(p.all_in_first_bin());
        let mut rng = StdRng::seed_from_u64(2);
        RandomRemoveInPlace.destroy(&p, &mut state, 0.3, &mut rng);
        assert_eq!(state.removed().len(), 3);
        assert_eq!(
            state
                .solution()
                .iter()
                .filter(|&&b| b == UNASSIGNED)
                .count(),
            3
        );
    }

    #[test]
    fn worst_bin_remove_empties_fullest() {
        let p = PartitionProblem {
            items: vec![5.0, 1.0, 1.0],
            bins: 2,
        };
        let mut state = p.make_state(vec![0, 1, 1]); // bin0=5, bin1=2
        let mut rng = StdRng::seed_from_u64(3);
        WorstBinRemoveInPlace.destroy(&p, &mut state, 0.5, &mut rng);
        assert_eq!(state.removed(), &[0]);
        assert_eq!(state.solution()[0], UNASSIGNED);
    }

    #[test]
    fn greedy_insert_completes_and_balances() {
        let p = PartitionProblem {
            items: vec![4.0, 3.0, 2.0, 1.0],
            bins: 2,
        };
        let mut state = p.make_state(vec![UNASSIGNED; 4]);
        assert_eq!(state.removed().len(), 4);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(GreedyInsertInPlace.repair(&p, &mut state, &mut rng));
        let sol = p.snapshot(&state);
        assert!(p.is_feasible(&sol));
        // LPT on {4,3,2,1} into 2 bins gives 5/5: perfectly balanced.
        assert!((p.objective(&sol) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn in_place_destroy_repair_revert_restores_exactly() {
        let p = PartitionProblem::random(20, 3, 6);
        let sol = {
            // Start from a spread-out solution so reverts are non-trivial.
            let mut s = p.all_in_first_bin();
            for (i, b) in s.iter_mut().enumerate() {
                *b = i % 3;
            }
            s
        };
        let mut state = p.make_state(sol.clone());
        let sums_before = state.sums().to_vec();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            RandomRemoveInPlace.destroy(&p, &mut state, 0.3, &mut rng);
            assert!(!state.removed().is_empty());
            assert!(GreedyInsertInPlace.repair(&p, &mut state, &mut rng));
            p.revert(&mut state);
            assert_eq!(
                state.solution(),
                &sol[..],
                "revert must restore the solution"
            );
            assert_eq!(
                state.sums(),
                &sums_before[..],
                "revert must restore sums bit-exactly"
            );
        }
    }

    #[test]
    fn in_place_commit_keeps_edits_and_objective_matches_full() {
        let p = PartitionProblem::random(30, 4, 12);
        let mut state = p.make_state(p.all_in_first_bin());
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            WorstBinRemoveInPlace.destroy(&p, &mut state, 0.2, &mut rng);
            assert!(GreedyInsertInPlace.repair(&p, &mut state, &mut rng));
            p.commit(&mut state);
            let delta = p.state_objective(&mut state);
            let full = p.objective(&state.solution().to_vec());
            assert!((delta - full).abs() < 1e-9, "delta {delta} vs full {full}");
        }
    }
}
