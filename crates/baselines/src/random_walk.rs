//! Random transiently-feasible moves: the sanity floor.

use crate::common::{eligible_machines, single_move_feasible, RebalanceResult, Rebalancer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rex_cluster::{
    verify_schedule, Assignment, ClusterError, Instance, MigrationPlan, Move, ShardId,
};
use std::time::Instant;

/// Applies `moves` random transiently-feasible shard moves. Any serious
/// method must beat it; it also doubles as a workload perturber in tests.
#[derive(Clone, Copy, Debug)]
pub struct RandomWalkRebalancer {
    /// Number of random moves attempted.
    pub moves: usize,
    /// Deterministic seed.
    pub seed: u64,
    /// Whether exchange machines may be used.
    pub use_exchange: bool,
}

impl Default for RandomWalkRebalancer {
    fn default() -> Self {
        Self {
            moves: 100,
            seed: 0,
            use_exchange: false,
        }
    }
}

impl Rebalancer for RandomWalkRebalancer {
    fn name(&self) -> &str {
        "random-walk"
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceResult, ClusterError> {
        inst.validate()?;
        let start = Instant::now();
        let machines = eligible_machines(inst, self.use_exchange);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut asg = Assignment::from_initial(inst);
        let mut plan = MigrationPlan::default();

        for _ in 0..self.moves {
            let s = ShardId::from(rng.random_range(0..inst.n_shards()));
            let t = machines[rng.random_range(0..machines.len())];
            if asg.machine_of(s) != t
                && asg.fits(inst, s, t)
                && single_move_feasible(inst, &asg, s, t)
            {
                let from = asg.move_shard(inst, s, t);
                plan.batches.push(vec![Move {
                    shard: s,
                    from,
                    to: t,
                }]);
            }
        }

        verify_schedule(inst, &inst.initial, asg.placement(), &plan)?;
        Ok(RebalanceResult::finish(
            inst,
            asg,
            Some(plan),
            start.elapsed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::{InstanceBuilder, MachineId};

    fn inst() -> Instance {
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let _m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        for _ in 0..5 {
            b.shard(&[1.0], 1.0, m0);
        }
        b.build().unwrap()
    }

    #[test]
    fn produces_verified_schedule() {
        let r = RandomWalkRebalancer::default().rebalance(&inst()).unwrap();
        assert!(r.schedulable);
        assert!(r.final_report.peak <= 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RandomWalkRebalancer {
            seed: 7,
            ..Default::default()
        }
        .rebalance(&inst())
        .unwrap();
        let b = RandomWalkRebalancer {
            seed: 7,
            ..Default::default()
        }
        .rebalance(&inst())
        .unwrap();
        assert_eq!(a.assignment.placement(), b.assignment.placement());
        let c = RandomWalkRebalancer {
            seed: 8,
            ..Default::default()
        }
        .rebalance(&inst())
        .unwrap();
        // Different seeds usually differ (not guaranteed, but true here).
        assert_ne!(a.assignment.placement(), c.assignment.placement());
    }

    #[test]
    fn never_touches_exchange_machines_by_default() {
        let inst = inst();
        let r = RandomWalkRebalancer {
            moves: 500,
            ..Default::default()
        }
        .rebalance(&inst)
        .unwrap();
        assert!(r.assignment.is_vacant(MachineId(2)));
    }

    #[test]
    fn zero_moves_is_identity() {
        let inst = inst();
        let r = RandomWalkRebalancer {
            moves: 0,
            ..Default::default()
        }
        .rebalance(&inst)
        .unwrap();
        assert_eq!(r.assignment.placement(), &inst.initial[..]);
        assert_eq!(r.migration.total_moves, 0);
    }
}
