//! First-fit-decreasing repack: the transient-oblivious quality bound.

use crate::common::{eligible_machines, RebalanceResult, Rebalancer};
use rex_cluster::{
    plan_migration, verify_schedule, Assignment, ClusterError, Instance, PlannerConfig, ShardId,
};
use std::time::Instant;

/// Repacks every shard from scratch, largest demand first, each onto the
/// eligible machine with the lowest resulting load — **ignoring** where
/// shards currently are and whether the repack could ever be scheduled
/// under transient constraints.
///
/// This is not a deployable method; it answers "how balanced could this
/// fleet be if migration were free?", which upper-bounds every scheduler
/// including SRA. After packing, a migration plan is *attempted*; on
/// stringent instances it routinely deadlocks, and the result is returned
/// with `schedulable = false` — that gap is the paper's motivation made
/// visible.
#[derive(Clone, Copy, Debug, Default)]
pub struct FfdRepacker {
    /// Whether exchange machines may be used.
    pub use_exchange: bool,
    /// Planner used for the (best-effort) schedulability attempt.
    pub planner: PlannerConfig,
}

impl Rebalancer for FfdRepacker {
    fn name(&self) -> &str {
        "ffd-repack"
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceResult, ClusterError> {
        inst.validate()?;
        let start = Instant::now();
        let machines = eligible_machines(inst, self.use_exchange);

        // Order shards by decreasing demand norm (ties by id: determinism).
        let mut order: Vec<ShardId> = (0..inst.n_shards()).map(ShardId::from).collect();
        order.sort_by(|&a, &b| {
            inst.demand(b)
                .norm()
                .partial_cmp(&inst.demand(a).norm())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        // Start from an empty fleet: detach everything, then best-fit.
        let mut asg = Assignment::from_initial(inst);
        for s in order.iter() {
            asg.detach_shard(inst, *s);
        }
        for &s in &order {
            let mut best: Option<(rex_cluster::MachineId, f64)> = None;
            for &m in &machines {
                if !asg.fits(inst, s, m) {
                    continue;
                }
                let mut u = asg.usage(m);
                u += inst.demand(s);
                let load = u.max_ratio(inst.capacity(m));
                let better = match best {
                    None => true,
                    Some((_, b)) => load < b,
                };
                if better {
                    best = Some((m, load));
                }
            }
            let (m, _) = best.ok_or(ClusterError::TargetOverload {
                machine: rex_cluster::MachineId(0),
            })?;
            asg.attach_shard(inst, s, m);
        }

        // Best-effort schedulability.
        let plan = match plan_migration(inst, &inst.initial, asg.placement(), &self.planner) {
            Ok(p) => {
                verify_schedule(inst, &inst.initial, asg.placement(), &p)?;
                Some(p)
            }
            Err(ClusterError::PlanningDeadlock { .. }) => None,
            Err(e) => return Err(e),
        };

        Ok(RebalanceResult::finish(inst, asg, plan, start.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::{InstanceBuilder, MachineId};

    #[test]
    fn ffd_reaches_near_optimal_balance() {
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        for (i, w) in [4.0, 3.0, 3.0, 2.0, 2.0, 2.0].into_iter().enumerate() {
            b.shard(&[w], 1.0, if i % 2 == 0 { m0 } else { m1 });
        }
        let inst = b.build().unwrap();
        let r = FfdRepacker::default().rebalance(&inst).unwrap();
        // Total 16 over two machines → ideal 0.8; FFD achieves it here.
        assert!(
            (r.final_report.peak - 0.8).abs() < 1e-9,
            "peak={}",
            r.final_report.peak
        );
    }

    #[test]
    fn ffd_reports_unschedulable_on_stringent_swap() {
        // The balanced repack requires a swap two 90%-full machines cannot
        // schedule: FFD must still return the packing, flagged unschedulable
        // — or a schedulable packing if one of equal quality exists.
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        b.shard(&[9.0], 1.0, m0);
        b.shard(&[5.0], 1.0, m1);
        b.shard(&[4.0], 1.0, m1);
        let inst = b.build().unwrap();
        let r = FfdRepacker::default().rebalance(&inst).unwrap();
        // FFD packs 9 alone and 5+4 together (peak 0.9) — identical peak,
        // but the 9-shard may land on m1 requiring an unschedulable shuffle.
        assert!((r.final_report.peak - 0.9).abs() < 1e-9);
        if !r.schedulable {
            assert!(r.plan.is_none());
        }
    }

    #[test]
    fn ffd_ignores_exchange_by_default_and_uses_it_when_told() {
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let _m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        for _ in 0..9 {
            b.shard(&[1.0], 1.0, m0);
        }
        let inst = b.build().unwrap();
        let without = FfdRepacker::default().rebalance(&inst).unwrap();
        assert!(without.assignment.is_vacant(MachineId(2)));
        assert!((without.final_report.peak - 0.5).abs() < 1e-9);
        let with = FfdRepacker {
            use_exchange: true,
            ..Default::default()
        }
        .rebalance(&inst)
        .unwrap();
        assert!((with.final_report.peak - 0.3).abs() < 1e-9);
    }

    #[test]
    fn ffd_errors_when_a_shard_cannot_fit_anywhere() {
        // A shard that only fits on the exchange machine, which FFD (in the
        // faithful no-exchange mode) may not use... such instances cannot be
        // built (initial placement must be feasible on original machines),
        // so instead: force failure via use_exchange=false with shards that
        // only pack onto 3 machines when 2 are eligible. Capacities: the
        // shards fit initially (4+4 ≤ 10 each) and FFD repacks fine — use
        // unequal dims to create a genuine failure.
        let mut b = InstanceBuilder::new(2);
        let m0 = b.machine(&[10.0, 2.0]);
        let m1 = b.machine(&[10.0, 2.0]);
        b.shard(&[1.0, 2.0], 1.0, m0);
        b.shard(&[1.0, 2.0], 1.0, m1);
        b.shard(&[8.0, 0.0], 1.0, m0);
        let inst = b.build().unwrap();
        // FFD sorts by norm: the 8-unit shard first (norm 8), then the two
        // [1,2] shards (norm √5). First [1,2] goes somewhere, second [1,2]
        // must take the other machine, 8-shard is already placed — all fit.
        // This instance packs; assert success rather than failure, and keep
        // the error path covered by the unit test in `repair.rs`.
        let r = FfdRepacker::default().rebalance(&inst).unwrap();
        assert!(r.final_report.peak <= 1.0 + 1e-9);
    }

    #[test]
    fn deterministic() {
        let mut b = InstanceBuilder::new(2);
        let m0 = b.machine(&[10.0, 8.0]);
        let m1 = b.machine(&[9.0, 10.0]);
        for i in 0..8 {
            b.shard(
                &[0.5 + 0.25 * (i as f64), 1.0],
                1.0,
                if i % 2 == 0 { m0 } else { m1 },
            );
        }
        let inst = b.build().unwrap();
        let a = FfdRepacker::default().rebalance(&inst).unwrap();
        let b2 = FfdRepacker::default().rebalance(&inst).unwrap();
        assert_eq!(a.assignment.placement(), b2.assignment.placement());
    }
}
