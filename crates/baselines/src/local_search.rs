//! Steepest-descent local search over move and swap neighborhoods.

use crate::common::{eligible_machines, single_move_feasible, RebalanceResult, Rebalancer};
use rex_cluster::{
    verify_schedule, Assignment, ClusterError, Instance, MachineId, MigrationPlan, Move, ShardId,
};
use std::time::Instant;

/// Steepest-descent rebalancer: each step applies the best improving
/// *move* (shard → machine) or *swap* (shard ↔ shard) found in the
/// neighborhood of the hottest machines, subject to per-step transient
/// feasibility. Swaps execute as two sequential single-move batches (in
/// whichever order is transiently feasible), so even a swap between two
/// full machines needs a third machine with slack — exactly the limitation
/// the paper's exchange machines remove.
#[derive(Clone, Copy, Debug)]
pub struct LocalSearchRebalancer {
    /// Upper bound on applied steps (a swap counts as one step, two moves).
    pub max_steps: usize,
    /// How many of the hottest machines act as move/swap sources each step.
    pub top_sources: usize,
    /// Whether swaps are in the neighborhood.
    pub allow_swaps: bool,
    /// Whether exchange machines may be used.
    pub use_exchange: bool,
}

impl Default for LocalSearchRebalancer {
    fn default() -> Self {
        Self {
            max_steps: 10_000,
            top_sources: 3,
            allow_swaps: true,
            use_exchange: false,
        }
    }
}

/// One candidate step.
enum Step {
    Move(ShardId, MachineId),
    Swap(ShardId, ShardId),
}

impl LocalSearchRebalancer {
    /// Peak load over the eligible machines.
    fn peak(&self, inst: &Instance, asg: &Assignment, machines: &[MachineId]) -> f64 {
        machines
            .iter()
            .map(|&m| asg.machine_load(inst, m))
            .fold(0.0, f64::max)
    }

    /// Loads after hypothetically moving `s` to `t`, for the two machines
    /// involved.
    fn move_loads(
        &self,
        inst: &Instance,
        asg: &Assignment,
        s: ShardId,
        t: MachineId,
    ) -> Option<(f64, f64)> {
        if !asg.fits(inst, s, t) {
            return None;
        }
        let f = asg.machine_of(s);
        let d = inst.demand(s);
        let mut uf = asg.usage(f);
        uf.saturating_sub_assign(d);
        let mut ut = asg.usage(t);
        ut += d;
        Some((
            uf.max_ratio(inst.capacity(f)),
            ut.max_ratio(inst.capacity(t)),
        ))
    }

    /// Whether a swap of `a` (on `ma`) and `b` (on `mb`) fits capacity-wise.
    fn swap_fits(
        &self,
        inst: &Instance,
        asg: &Assignment,
        a: ShardId,
        b: ShardId,
    ) -> Option<(f64, f64)> {
        let ma = asg.machine_of(a);
        let mb = asg.machine_of(b);
        if ma == mb {
            return None;
        }
        let da = inst.demand(a);
        let db = inst.demand(b);
        let mut ua = asg.usage(ma);
        ua.saturating_sub_assign(da);
        ua += db;
        let mut ub = asg.usage(mb);
        ub.saturating_sub_assign(db);
        ub += da;
        if !ua.fits_within(inst.capacity(ma)) || !ub.fits_within(inst.capacity(mb)) {
            return None;
        }
        Some((
            ua.max_ratio(inst.capacity(ma)),
            ub.max_ratio(inst.capacity(mb)),
        ))
    }

    /// Tries to execute a swap as two sequential moves, in either order.
    /// Returns the batches on success, leaving `asg` updated.
    fn apply_swap(
        &self,
        inst: &Instance,
        asg: &mut Assignment,
        a: ShardId,
        b: ShardId,
    ) -> Option<Vec<Vec<Move>>> {
        let ma = asg.machine_of(a);
        let mb = asg.machine_of(b);
        // Order 1: a→mb first, then b→ma.
        if single_move_feasible(inst, asg, a, mb) {
            let mut trial = asg.clone();
            trial.move_shard(inst, a, mb);
            if single_move_feasible(inst, &trial, b, ma) {
                trial.move_shard(inst, b, ma);
                *asg = trial;
                return Some(vec![
                    vec![Move {
                        shard: a,
                        from: ma,
                        to: mb,
                    }],
                    vec![Move {
                        shard: b,
                        from: mb,
                        to: ma,
                    }],
                ]);
            }
        }
        // Order 2: b→ma first.
        if single_move_feasible(inst, asg, b, ma) {
            let mut trial = asg.clone();
            trial.move_shard(inst, b, ma);
            if single_move_feasible(inst, &trial, a, mb) {
                trial.move_shard(inst, a, mb);
                *asg = trial;
                return Some(vec![
                    vec![Move {
                        shard: b,
                        from: mb,
                        to: ma,
                    }],
                    vec![Move {
                        shard: a,
                        from: ma,
                        to: mb,
                    }],
                ]);
            }
        }
        None
    }
}

impl Rebalancer for LocalSearchRebalancer {
    fn name(&self) -> &str {
        "local-search"
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceResult, ClusterError> {
        inst.validate()?;
        let start = Instant::now();
        let machines = eligible_machines(inst, self.use_exchange);
        let mut asg = Assignment::from_initial(inst);
        let mut plan = MigrationPlan::default();

        for _ in 0..self.max_steps {
            let peak = self.peak(inst, &asg, &machines);

            // Sources: the hottest machines.
            let mut by_load: Vec<(f64, MachineId)> = machines
                .iter()
                .map(|&m| (asg.machine_load(inst, m), m))
                .collect();
            by_load.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
            let sources: Vec<MachineId> = by_load
                .iter()
                .take(self.top_sources)
                .map(|&(_, m)| m)
                .collect();

            // Collect improving steps, best (lowest local peak) first. A
            // step must strictly reduce the max load of the two machines it
            // touches (not merely stay under the global peak — that would
            // let the search shuffle load between cool machines forever).
            // Move candidates are transient-checked at collection; swaps
            // only capacity-checked — schedulability is probed at apply
            // time, falling through to the next candidate when the two-move
            // sequence cannot be ordered.
            let _ = peak;
            let mut candidates: Vec<(f64, Step)> = Vec::new();
            for &h in &sources {
                let load_h = asg.machine_load(inst, h);
                for &s in asg.shards_on(h) {
                    // Moves.
                    for &t in &machines {
                        if t == h {
                            continue;
                        }
                        let pair_before = load_h.max(asg.machine_load(inst, t));
                        if let Some((lh, lt)) = self.move_loads(inst, &asg, s, t) {
                            let local = lh.max(lt);
                            if local + 1e-12 < pair_before && single_move_feasible(inst, &asg, s, t)
                            {
                                candidates.push((local, Step::Move(s, t)));
                            }
                        }
                    }
                    // Swaps.
                    if self.allow_swaps {
                        for &t in &machines {
                            if t == h {
                                continue;
                            }
                            let pair_before = load_h.max(asg.machine_load(inst, t));
                            for &b in asg.shards_on(t) {
                                if let Some((la, lb)) = self.swap_fits(inst, &asg, s, b) {
                                    let local = la.max(lb);
                                    if local + 1e-12 < pair_before {
                                        candidates.push((local, Step::Swap(s, b)));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

            let mut applied = false;
            for (_, step) in candidates {
                match step {
                    Step::Move(s, t) => {
                        let from = asg.move_shard(inst, s, t);
                        plan.batches.push(vec![Move {
                            shard: s,
                            from,
                            to: t,
                        }]);
                        applied = true;
                    }
                    Step::Swap(a, b) => match self.apply_swap(inst, &mut asg, a, b) {
                        Some(batches) => {
                            plan.batches.extend(batches);
                            applied = true;
                        }
                        None => continue, // unschedulable swap: next candidate
                    },
                }
                break;
            }
            if !applied {
                break; // local optimum (or everything transient-blocked)
            }
        }

        verify_schedule(inst, &inst.initial, asg.placement(), &plan)?;
        Ok(RebalanceResult::finish(
            inst,
            asg,
            Some(plan),
            start.elapsed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::InstanceBuilder;

    #[test]
    fn local_search_balances_unit_shards() {
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let _m1 = b.machine(&[10.0]);
        for _ in 0..6 {
            b.shard(&[1.0], 1.0, m0);
        }
        let inst = b.build().unwrap();
        let r = LocalSearchRebalancer::default().rebalance(&inst).unwrap();
        assert!((r.final_report.peak - 0.3).abs() < 1e-9);
        assert!(r.schedulable);
    }

    #[test]
    fn swaps_fix_what_moves_cannot() {
        // m0: 7+2 = 9; m1: 6. Pure moves can't help (moving 2 to m1 gives
        // 8 > 7... actually gives peak 8/10): swap 7 ↔ 6 lowers peak to 8.
        // Here a size-mismatch swap is the only improving step:
        // m0: {7, 2}, m1: {6, 2}. Peak 0.9 vs 0.8. Swap 7↔6 → m0=8... no.
        // Use: m0 {7,2}=9, m1 {4}=4. Move 2→m1 gives 7/6 peak 0.7 — moves
        // suffice. To isolate swaps: m0 {6,3}=9, m1 {5,2}=7, caps 10.
        // Moves: 3→m1 = 10 feasible cap-wise → peak max(6,10)=1.0 worse;
        // 2→m0 worse. Swap 3↔2: m0=8, m1=8 → improves peak to 0.8.
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        b.shard(&[6.0], 1.0, m0);
        b.shard(&[3.0], 1.0, m0);
        b.shard(&[5.0], 1.0, m1);
        b.shard(&[2.0], 1.0, m1);
        let inst = b.build().unwrap();

        let no_swaps = LocalSearchRebalancer {
            allow_swaps: false,
            ..Default::default()
        }
        .rebalance(&inst)
        .unwrap();
        assert!(
            (no_swaps.final_report.peak - 0.9).abs() < 1e-9,
            "moves alone cannot improve"
        );

        let with_swaps = LocalSearchRebalancer::default().rebalance(&inst).unwrap();
        assert!(
            (with_swaps.final_report.peak - 0.8).abs() < 1e-9,
            "swap should reach 0.8, got {}",
            with_swaps.final_report.peak
        );
    }

    #[test]
    fn stringent_swap_needs_slack_elsewhere() {
        // Both machines 90% full; the improving swap cannot be sequenced
        // (neither shard fits transiently anywhere) → no progress.
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        b.shard(&[9.0], 1.0, m0);
        b.shard(&[8.0], 1.0, m1);
        let inst = b.build().unwrap();
        let r = LocalSearchRebalancer::default().rebalance(&inst).unwrap();
        assert_eq!(r.migration.total_moves, 0);
    }

    #[test]
    fn respects_step_budget() {
        let mut b = InstanceBuilder::new(1);
        let m0 = b.machine(&[20.0]);
        let _m1 = b.machine(&[20.0]);
        for _ in 0..12 {
            b.shard(&[1.0], 1.0, m0);
        }
        let inst = b.build().unwrap();
        let r = LocalSearchRebalancer {
            max_steps: 3,
            ..Default::default()
        }
        .rebalance(&inst)
        .unwrap();
        assert!(r.migration.total_moves <= 6); // ≤ 2 moves per step
    }

    #[test]
    fn deterministic() {
        let mut b = InstanceBuilder::new(2);
        let m0 = b.machine(&[10.0, 10.0]);
        let m1 = b.machine(&[10.0, 10.0]);
        for i in 0..6 {
            let host = if i < 4 { m0 } else { m1 };
            b.shard(&[1.0 + (i as f64) * 0.3, 0.5], 1.0, host);
        }
        let inst = b.build().unwrap();
        let a = LocalSearchRebalancer::default().rebalance(&inst).unwrap();
        let b2 = LocalSearchRebalancer::default().rebalance(&inst).unwrap();
        assert_eq!(a.assignment.placement(), b2.assignment.placement());
    }
}
