//! The greedy rebalancer: the "commonly used" datacenter practice.

use crate::common::{eligible_machines, single_move_feasible, RebalanceResult, Rebalancer};
use rex_cluster::{verify_schedule, Assignment, ClusterError, Instance, MigrationPlan, Move};
use std::time::Instant;

/// Repeatedly moves one shard off the currently hottest machine onto the
/// machine that minimizes the resulting peak, as long as each move is
/// transiently feasible *executed on its own* (one move per batch — exactly
/// how cautious production rebalancers ship index shards).
///
/// Stops at the first iteration with no strictly improving feasible move,
/// or after `max_moves`.
#[derive(Clone, Copy, Debug)]
pub struct GreedyRebalancer {
    /// Upper bound on executed moves.
    pub max_moves: usize,
    /// Whether the borrowed exchange machines may be used (the paper's
    /// baseline does not have them; `false` is the faithful setting).
    pub use_exchange: bool,
}

impl Default for GreedyRebalancer {
    fn default() -> Self {
        Self {
            max_moves: 10_000,
            use_exchange: false,
        }
    }
}

impl Rebalancer for GreedyRebalancer {
    fn name(&self) -> &str {
        "greedy"
    }

    fn rebalance(&self, inst: &Instance) -> Result<RebalanceResult, ClusterError> {
        inst.validate()?;
        let start = Instant::now();
        let targets = eligible_machines(inst, self.use_exchange);
        let mut asg = Assignment::from_initial(inst);
        let mut plan = MigrationPlan::default();

        for _ in 0..self.max_moves {
            // Hottest machine.
            let (hot, hot_load) = match targets
                .iter()
                .map(|&m| (m, asg.machine_load(inst, m)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            {
                Some(x) => x,
                None => break,
            };

            // Best (shard on hot, target) pair: minimizes the larger of the
            // two affected machines' post-move loads, and must strictly
            // lower the hot machine's contribution to the peak.
            let mut best: Option<(rex_cluster::ShardId, rex_cluster::MachineId, f64)> = None;
            for &s in asg.shards_on(hot) {
                let d = inst.demand(s);
                for &t in &targets {
                    if t == hot || !asg.fits(inst, s, t) {
                        continue;
                    }
                    let mut ut = asg.usage(t);
                    ut += d;
                    let lt = ut.max_ratio(inst.capacity(t));
                    let mut uh = asg.usage(hot);
                    uh.saturating_sub_assign(d);
                    let lh = uh.max_ratio(inst.capacity(hot));
                    let local_peak = lt.max(lh);
                    if local_peak + 1e-12 >= hot_load {
                        continue; // does not reduce the hot machine's peak
                    }
                    if !single_move_feasible(inst, &asg, s, t) {
                        continue; // blocked by the transient constraint
                    }
                    let better = match best {
                        None => true,
                        Some((_, _, b)) => local_peak < b,
                    };
                    if better {
                        best = Some((s, t, local_peak));
                    }
                }
            }

            match best {
                Some((s, t, _)) => {
                    let from = asg.move_shard(inst, s, t);
                    plan.batches.push(vec![Move {
                        shard: s,
                        from,
                        to: t,
                    }]);
                }
                None => break, // local optimum (or transient-blocked)
            }
        }

        verify_schedule(inst, &inst.initial, asg.placement(), &plan)?;
        Ok(RebalanceResult::finish(
            inst,
            asg,
            Some(plan),
            start.elapsed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::{InstanceBuilder, MachineId};

    fn skewed(alpha: f64) -> Instance {
        let mut b = InstanceBuilder::new(1).alpha(alpha);
        let m0 = b.machine(&[10.0]);
        let _m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        for _ in 0..8 {
            b.shard(&[1.0], 1.0, m0);
        }
        b.build().unwrap()
    }

    #[test]
    fn greedy_balances_easy_instance() {
        let inst = skewed(0.0);
        let r = GreedyRebalancer::default().rebalance(&inst).unwrap();
        assert!(r.schedulable);
        // 8 unit shards over two usable machines → 4/4.
        assert!(
            (r.final_report.peak - 0.4).abs() < 1e-9,
            "peak={}",
            r.final_report.peak
        );
        assert!(r.peak_improvement() > 0.4);
    }

    #[test]
    fn greedy_never_uses_exchange_machines_by_default() {
        let inst = skewed(0.0);
        let r = GreedyRebalancer::default().rebalance(&inst).unwrap();
        assert!(r.assignment.is_vacant(MachineId(2)));
    }

    #[test]
    fn greedy_can_use_exchange_when_allowed() {
        let inst = skewed(0.0);
        let r = GreedyRebalancer {
            use_exchange: true,
            ..Default::default()
        }
        .rebalance(&inst)
        .unwrap();
        // 8 shards over three machines → peak 3/10.
        assert!((r.final_report.peak - 0.3).abs() < 1e-9);
    }

    #[test]
    fn greedy_respects_move_budget() {
        let inst = skewed(0.0);
        let r = GreedyRebalancer {
            max_moves: 2,
            ..Default::default()
        }
        .rebalance(&inst)
        .unwrap();
        assert!(r.migration.total_moves <= 2);
    }

    #[test]
    fn greedy_blocked_by_stringent_transient_constraints() {
        // Two machines at 90%, no slack anywhere: no move is transiently
        // feasible, greedy must return the initial placement unchanged.
        let mut b = InstanceBuilder::new(1).alpha(0.5);
        let m0 = b.machine(&[10.0]);
        let m1 = b.machine(&[10.0]);
        b.shard(&[9.0], 1.0, m0);
        b.shard(&[5.0], 1.0, m1);
        let inst = b.build().unwrap();
        let r = GreedyRebalancer::default().rebalance(&inst).unwrap();
        assert_eq!(r.migration.total_moves, 0);
        assert_eq!(r.final_report.peak, r.initial_report.peak);
    }

    #[test]
    fn greedy_is_deterministic() {
        let inst = skewed(0.1);
        let a = GreedyRebalancer::default().rebalance(&inst).unwrap();
        let b = GreedyRebalancer::default().rebalance(&inst).unwrap();
        assert_eq!(a.assignment.placement(), b.assignment.placement());
    }
}
