//! # rex-baselines
//!
//! Baseline load-balancing methods the paper's SRA is evaluated against.
//! The abstract names no specific citation ("the state-of-art load
//! balancing method"); per DESIGN.md we substitute the strongest
//! published-practice rebalancers that do **not** use exchange machines:
//!
//! * [`GreedyRebalancer`] — hottest-to-coolest shard moves with per-move
//!   transient checks: the "commonly used load balancing approach" of the
//!   paper's opening sentence,
//! * [`LocalSearchRebalancer`] — steepest-descent over move and swap
//!   neighborhoods, transient-checked: a faithful stand-in for the
//!   local-search line the same group published around this paper,
//! * [`FfdRepacker`] — first-fit-decreasing full repack **ignoring**
//!   transient constraints: an idealized quality bound showing how much
//!   balance is locked away by transient feasibility,
//! * [`RandomWalkRebalancer`] — random transiently-feasible moves (sanity
//!   floor).
//!
//! All baselines speak the same [`Rebalancer`] interface and produce a
//! [`RebalanceResult`] whose schedule (when one exists) verifies under the
//! cluster simulator — so headline comparisons against SRA are
//! apples-to-apples.

pub mod common;
pub mod ffd;
pub mod greedy;
pub mod local_search;
pub mod random_walk;

pub use common::{RebalanceResult, Rebalancer};
pub use ffd::FfdRepacker;
pub use greedy::GreedyRebalancer;
pub use local_search::LocalSearchRebalancer;
pub use random_walk::RandomWalkRebalancer;
