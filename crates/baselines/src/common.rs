//! The shared baseline interface.

use rex_cluster::metrics::MigrationStats;
use rex_cluster::{Assignment, BalanceReport, ClusterError, Instance, MigrationPlan};
use std::time::Duration;

/// A load-balancing method that transforms an instance's initial placement
/// into a (hopefully) better one.
pub trait Rebalancer {
    /// Stable method name for tables.
    fn name(&self) -> &str;

    /// Rebalances the instance.
    fn rebalance(&self, inst: &Instance) -> Result<RebalanceResult, ClusterError>;
}

/// What a baseline produces.
#[derive(Clone, Debug)]
pub struct RebalanceResult {
    /// The final placement.
    pub assignment: Assignment,
    /// The migration schedule reaching it, if the method produces one that
    /// respects transient constraints. [`FfdRepacker`] deliberately ignores
    /// them, so its plan may be absent.
    ///
    /// [`FfdRepacker`]: crate::FfdRepacker
    pub plan: Option<MigrationPlan>,
    /// True when `plan` is present and verified.
    pub schedulable: bool,
    /// Balance report of the initial placement.
    pub initial_report: BalanceReport,
    /// Balance report of the final placement.
    pub final_report: BalanceReport,
    /// Migration cost summary (zeroed when no plan exists).
    pub migration: MigrationStats,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl RebalanceResult {
    /// Relative peak-load improvement over the initial placement.
    pub fn peak_improvement(&self) -> f64 {
        self.final_report
            .peak_improvement_over(&self.initial_report)
    }

    /// Builds the result from the pieces every baseline ends with.
    pub fn finish(
        inst: &Instance,
        assignment: Assignment,
        plan: Option<MigrationPlan>,
        elapsed: Duration,
    ) -> Self {
        let initial = Assignment::from_initial(inst);
        let migration = match &plan {
            Some(p) => MigrationStats::compute(inst, p),
            None => MigrationStats {
                shards_moved: assignment.moved_count(&inst.initial),
                total_moves: 0,
                extra_hops: 0,
                traffic: 0.0,
                batches: 0,
            },
        };
        Self {
            schedulable: plan.is_some(),
            initial_report: BalanceReport::compute(inst, &initial),
            final_report: BalanceReport::compute(inst, &assignment),
            migration,
            elapsed,
            plan,
            assignment,
        }
    }
}

/// Whether a single move of shard `s` (demand `d`) from `f` to `t` is
/// transiently feasible right now, executed as its own batch: the target
/// must hold `(1+α)·d` extra and the source `α·d` extra.
pub fn single_move_feasible(
    inst: &Instance,
    asg: &Assignment,
    s: rex_cluster::ShardId,
    t: rex_cluster::MachineId,
) -> bool {
    let f = asg.machine_of(s);
    if f == t {
        return false;
    }
    let d = inst.demand(s);
    let inflight = d.scaled(1.0 + inst.alpha);
    let overhead = d.scaled(inst.alpha);
    asg.usage(t).fits_after_add(&inflight, inst.capacity(t))
        && asg.usage(f).fits_after_add(&overhead, inst.capacity(f))
}

/// Machines a no-exchange baseline may place shards on: the original fleet
/// (exchange machines stay vacant, so the return quota is satisfied by
/// construction).
pub fn eligible_machines(inst: &Instance, use_exchange: bool) -> Vec<rex_cluster::MachineId> {
    inst.machines
        .iter()
        .filter(|m| use_exchange || !m.exchange)
        .map(|m| m.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_cluster::{InstanceBuilder, MachineId, ShardId};

    fn inst(alpha: f64) -> Instance {
        let mut b = InstanceBuilder::new(1).alpha(alpha);
        let m0 = b.machine(&[10.0]);
        let _m1 = b.machine(&[10.0]);
        let _x = b.exchange_machine(&[10.0]);
        b.shard(&[6.0], 1.0, m0);
        b.shard(&[6.0], 1.0, MachineId(1));
        b.build().unwrap()
    }

    #[test]
    fn single_move_feasible_respects_alpha() {
        let tight = inst(0.8);
        let asg = Assignment::from_initial(&tight);
        // Moving shard 0 onto m1: m1 must hold 6 + 1.8*6 = 16.8 > 10.
        assert!(!single_move_feasible(
            &tight,
            &asg,
            ShardId(0),
            MachineId(1)
        ));
        // Onto the vacant exchange machine: 1.8*6 = 10.8 > 10 — also blocked.
        assert!(!single_move_feasible(
            &tight,
            &asg,
            ShardId(0),
            MachineId(2)
        ));
        let loose = inst(0.0);
        let asg = Assignment::from_initial(&loose);
        assert!(single_move_feasible(&loose, &asg, ShardId(0), MachineId(2)));
        assert!(!single_move_feasible(
            &loose,
            &asg,
            ShardId(0),
            MachineId(1)
        ));
    }

    #[test]
    fn self_move_is_never_feasible() {
        let i = inst(0.0);
        let asg = Assignment::from_initial(&i);
        assert!(!single_move_feasible(&i, &asg, ShardId(0), MachineId(0)));
    }

    #[test]
    fn eligible_machines_excludes_exchange_by_default() {
        let i = inst(0.0);
        assert_eq!(
            eligible_machines(&i, false),
            vec![MachineId(0), MachineId(1)]
        );
        assert_eq!(eligible_machines(&i, true).len(), 3);
    }

    #[test]
    fn finish_without_plan_marks_unschedulable() {
        let i = inst(0.0);
        let asg = Assignment::from_initial(&i);
        let r = RebalanceResult::finish(&i, asg, None, Duration::ZERO);
        assert!(!r.schedulable);
        assert_eq!(r.migration.total_moves, 0);
        assert_eq!(r.peak_improvement(), 0.0);
    }
}
