//! Property tests: every baseline's contract on random instances.

use proptest::prelude::*;
use rex_baselines::{
    FfdRepacker, GreedyRebalancer, LocalSearchRebalancer, RandomWalkRebalancer, Rebalancer,
};
use rex_cluster::{verify_schedule, Instance, InstanceBuilder, MachineId};

fn build(seed: u64, n_m: usize, n_x: usize, n_s: usize, alpha: f64) -> Option<Instance> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new(2).alpha(alpha).label("prop");
    let machines: Vec<MachineId> = (0..n_m).map(|_| b.machine(&[10.0, 10.0])).collect();
    for _ in 0..n_x {
        b.exchange_machine(&[10.0, 10.0]);
    }
    let mut usage = vec![[0.0f64; 2]; n_m];
    for _ in 0..n_s {
        let d = [rng.random_range(0.3..2.5), rng.random_range(0.3..2.5)];
        let host = (0..n_m).find(|&m| usage[m][0] + d[0] <= 10.0 && usage[m][1] + d[1] <= 10.0)?;
        usage[host][0] += d[0];
        usage[host][1] += d[1];
        b.shard(&d, d[1], machines[host]);
    }
    b.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Deployable baselines: verified schedules, monotone peak, exchange
    /// machines untouched.
    #[test]
    fn deployable_baselines_contract(
        seed in any::<u64>(),
        n_m in 2usize..7,
        n_x in 0usize..3,
        n_s in 4usize..30,
        alpha in prop_oneof![Just(0.0), Just(0.15), Just(0.4)],
    ) {
        let Some(inst) = build(seed, n_m, n_x, n_s, alpha) else { return Ok(()) };
        let methods: Vec<Box<dyn Rebalancer>> = vec![
            Box::new(GreedyRebalancer::default()),
            Box::new(LocalSearchRebalancer::default()),
            Box::new(RandomWalkRebalancer { moves: 40, seed, ..Default::default() }),
        ];
        for m in methods {
            let r = m.rebalance(&inst).unwrap();
            let plan = r.plan.as_ref().expect("deployable baselines always plan");
            verify_schedule(&inst, &inst.initial, r.assignment.placement(), plan).unwrap();
            prop_assert!(r.assignment.is_capacity_feasible(&inst), "{}", m.name());
            for x in inst.exchange_machines() {
                prop_assert!(r.assignment.is_vacant(x), "{} used {x}", m.name());
            }
            if m.name() != "random-walk" {
                prop_assert!(
                    r.final_report.peak <= r.initial_report.peak + 1e-9,
                    "{} regressed",
                    m.name()
                );
            }
        }
    }

    /// FFD: capacity-feasible packing above the fractional bound; when it
    /// claims schedulability, the schedule verifies. (FFD is a repacking
    /// heuristic, not a guaranteed bound: on tiny instances the
    /// incremental methods occasionally beat it, so no cross-method
    /// inequality is asserted here — the benches report the comparison
    /// empirically instead.)
    #[test]
    fn ffd_contract(seed in any::<u64>(), n_s in 6usize..30) {
        let Some(inst) = build(seed, 4, 1, n_s, 0.1) else { return Ok(()) };
        let ffd = FfdRepacker::default().rebalance(&inst).unwrap();
        prop_assert!(ffd.assignment.is_capacity_feasible(&inst));
        if let Some(plan) = &ffd.plan {
            verify_schedule(&inst, &inst.initial, ffd.assignment.placement(), plan).unwrap();
            prop_assert!(ffd.schedulable);
        } else {
            prop_assert!(!ffd.schedulable);
        }
        for x in inst.exchange_machines() {
            prop_assert!(ffd.assignment.is_vacant(x));
        }
    }
}
