//! Vendored, dependency-free shim of the `rand` 0.10 API surface this
//! workspace uses. The build environment has no registry access, so the
//! workspace resolves `rand` to this path crate (see the root `Cargo.toml`).
//!
//! Only determinism and reasonable statistical quality matter here — the
//! stream is **not** compatible with upstream `rand`. [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64, the standard small-state
//! generator pairing; every algorithm in the workspace derives its
//! randomness from an explicit `u64` seed, so reproducibility is preserved
//! across platforms and rebuilds.

/// A source of random 64-bit words. The one method every adapter needs.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seeding. 256 bits of state, passes BigCrush, `Copy`-cheap.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` by rejection (Lemire-style
/// threshold on the low word).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone: values ≥ the largest multiple of `bound` that fits.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return <$t as Standard>::sample_standard(rng);
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_int_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

signed_int_sample_range!(i64 => u64, i32 => u32, isize => usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// The user-facing sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniformly distributed value of `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniformly distributed over `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related helpers (`shuffle`, index sampling).
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::{RngCore, RngExt};

        /// `amount` distinct indices drawn uniformly from `0..length`,
        /// in random order (partial Fisher–Yates).
        ///
        /// # Panics
        /// If `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> Vec<usize> {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut indices: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                indices.swap(i, j);
            }
            indices.truncate(amount);
            indices
        }
    }
}

/// The traits and types most call sites want in scope.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.random_range(0.5..10.5);
            assert!((0.5..10.5).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left the slice untouched"
        );
    }

    #[test]
    fn index_sample_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        let picks = super::seq::index::sample(&mut rng, 100, 10);
        assert_eq!(picks.len(), 10);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(picks.iter().all(|&i| i < 100));
    }
}
