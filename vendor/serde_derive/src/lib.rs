//! Vendored `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Hand-parses the item's token stream (no `syn`/`quote` — the build is
//! fully offline) and emits impls of the shim's `to_value`/`from_value`
//! traits. Supported shapes — everything this workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs (single-field newtypes serialize transparently, like
//!   upstream; `#[serde(transparent)]` is accepted and implied),
//! * unit structs,
//! * enums with unit, tuple, and struct variants,
//! * `#[serde(default)]` — on a field, an absent key deserializes to
//!   `Default::default()` of the field's type; on a struct, absent keys
//!   take their value from `Self::default()` (upstream semantics: the
//!   container default is constructed once and fields are moved out of
//!   it, so non-zero defaults survive).
//!
//! Generics are not supported (no derived type in the workspace is
//! generic); the macro panics with a clear message if it meets them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item being derived.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
        /// Container-level `#[serde(default)]`: every absent key falls
        /// back to the matching field of `Self::default()`.
        default_all: bool,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One named field and whether it carries `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

/// One enum variant.
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

/// Skips attributes (`#[...]`) at `*i`, returning whether any of them was
/// `#[serde(default)]` (or a `serde(...)` list containing `default`).
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis {
                        for t in args.stream() {
                            if let TokenTree::Ident(a) = t {
                                if a.to_string() == "default" {
                                    has_default = true;
                                }
                            }
                        }
                    }
                }
                *i += 2;
            }
            _ => break,
        }
    }
    has_default
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `*i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Splits a token list on top-level commas, tracking `<...>` depth
/// (parens/brackets/braces arrive pre-grouped and need no tracking).
/// Returns the number of non-empty segments.
fn count_top_level_segments(tokens: &[TokenTree]) -> usize {
    let mut segments = 0usize;
    let mut seen_any = false;
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if seen_any {
                        segments += 1;
                    }
                    seen_any = false;
                    continue;
                }
                _ => {}
            }
        }
        seen_any = true;
    }
    if seen_any {
        segments += 1;
    }
    segments
}

/// Parses the fields out of a named-field group (`{ ... }`).
fn parse_named_fields(group: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < group.len() {
        let default = skip_attrs(group, &mut i);
        skip_vis(group, &mut i);
        let Some(TokenTree::Ident(name)) = group.get(i) else {
            panic!(
                "serde_derive shim: expected field name, got {:?}",
                group.get(i)
            );
        };
        fields.push(Field {
            name: name.to_string(),
            default,
        });
        i += 1;
        // Expect `:` then the type — skip tokens to the next top-level `,`.
        let mut angle = 0i32;
        while i < group.len() {
            if let TokenTree::Punct(p) = &group[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Parses the variants of an enum body (`{ ... }`).
fn parse_variants(group: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group.len() {
        skip_attrs(group, &mut i);
        let Some(TokenTree::Ident(name)) = group.get(i) else {
            panic!(
                "serde_derive shim: expected variant name, got {:?}",
                group.get(i)
            );
        };
        let name = name.to_string();
        i += 1;
        match group.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                variants.push(Variant::Tuple(name, count_top_level_segments(&inner)));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                variants.push(Variant::Struct(name, parse_named_fields(&inner)));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip an optional discriminant and the trailing comma.
        while i < group.len() {
            if let TokenTree::Punct(p) = &group[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Parses the derived item's definition.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let default_all = skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let Some(TokenTree::Ident(kw)) = tokens.get(i) else {
        panic!("serde_derive shim: expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    i += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(i) else {
        panic!("serde_derive shim: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (type `{name}`)");
        }
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::NamedStruct {
                    name,
                    fields: parse_named_fields(&inner),
                    default_all,
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::TupleStruct {
                    name,
                    arity: count_top_level_segments(&inner),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive shim: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::Enum {
                    name,
                    variants: parse_variants(&inner),
                }
            }
            other => panic!("serde_derive shim: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive shim: expected struct or enum, found `{other}`"),
    }
}

/// Derives the shim's `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct { name, fields, .. } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\
                     fn to_value(&self) -> serde::value::Value {{\
                         serde::value::Value::Object(::std::vec![{pushes}])\
                     }}\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl serde::Serialize for {name} {{\
                 fn to_value(&self) -> serde::value::Value {{\
                     serde::Serialize::to_value(&self.0)\
                 }}\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\
                     fn to_value(&self) -> serde::value::Value {{\
                         serde::value::Value::Array(::std::vec![{items}])\
                     }}\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\
                 fn to_value(&self) -> serde::value::Value {{\
                     serde::value::Value::Null\
                 }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => format!(
                        "{name}::{vn} => serde::value::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                    ),
                    Variant::Tuple(vn, arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let bind_list = binds.join(", ");
                        if *arity == 1 {
                            format!(
                                "{name}::{vn}(__f0) => serde::value::Value::Object(::std::vec![\
                                     (::std::string::String::from(\"{vn}\"), \
                                      serde::Serialize::to_value(__f0))]),"
                            )
                        } else {
                            let items: String = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({bind_list}) => \
                                 serde::value::Value::Object(::std::vec![\
                                     (::std::string::String::from(\"{vn}\"), \
                                      serde::value::Value::Array(::std::vec![{items}]))]),"
                            )
                        }
                    }
                    Variant::Struct(vn, fields) => {
                        let bind_list = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items: String = fields
                            .iter()
                            .map(|f| {
                                let f = &f.name;
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {bind_list} }} => \
                             serde::value::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                  serde::value::Value::Object(::std::vec![{items}]))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\
                     fn to_value(&self) -> serde::value::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            )
        }
    };
    src.parse()
        .expect("serde_derive shim: generated Serialize impl must parse")
}

/// Derives the shim's `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct {
            name,
            fields,
            default_all,
        } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let fname = &f.name;
                    if *default_all {
                        // Container-level default: absent keys take their
                        // value from the one `Self::default()` built below.
                        format!("{fname}: serde::__field_or(__obj, \"{fname}\", __dflt.{fname})?,")
                    } else if f.default {
                        format!(
                            "{fname}: serde::__field_or(__obj, \"{fname}\", \
                             ::core::default::Default::default())?,"
                        )
                    } else {
                        format!("{fname}: serde::__field(__obj, \"{fname}\")?,")
                    }
                })
                .collect();
            let dflt = if *default_all {
                format!("let __dflt: {name} = ::core::default::Default::default();")
            } else {
                String::new()
            };
            format!(
                "impl serde::Deserialize for {name} {{\
                     fn from_value(__v: &serde::value::Value) \
                         -> ::core::result::Result<Self, serde::DeError> {{\
                         let __obj = serde::__object(__v)?;\
                         {dflt}\
                         ::core::result::Result::Ok({name} {{ {inits} }})\
                     }}\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl serde::Deserialize for {name} {{\
                 fn from_value(__v: &serde::value::Value) \
                     -> ::core::result::Result<Self, serde::DeError> {{\
                     ::core::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))\
                 }}\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: String = (0..*arity)
                .map(|i| format!("serde::__element(__items, {i})?,"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\
                     fn from_value(__v: &serde::value::Value) \
                         -> ::core::result::Result<Self, serde::DeError> {{\
                         let __items = serde::__array(__v)?;\
                         ::core::result::Result::Ok({name}({inits}))\
                     }}\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\
                 fn from_value(_v: &serde::value::Value) \
                     -> ::core::result::Result<Self, serde::DeError> {{\
                     ::core::result::Result::Ok({name})\
                 }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(vn) => Some(format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),"
                    )),
                    _ => None,
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Tuple(vn, 1) => Some(format!(
                        "\"{vn}\" => ::core::result::Result::Ok(\
                             {name}::{vn}(serde::Deserialize::from_value(__val)?)),"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let inits: String = (0..*arity)
                            .map(|i| format!("serde::__element(__items, {i})?,"))
                            .collect();
                        Some(format!(
                            "\"{vn}\" => {{\
                                 let __items = serde::__array(__val)?;\
                                 ::core::result::Result::Ok({name}::{vn}({inits}))\
                             }}"
                        ))
                    }
                    Variant::Struct(vn, fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                let fname = &f.name;
                                if f.default {
                                    format!(
                                        "{fname}: serde::__field_or(__obj, \"{fname}\", \
                                         ::core::default::Default::default())?,"
                                    )
                                } else {
                                    format!("{fname}: serde::__field(__obj, \"{fname}\")?,")
                                }
                            })
                            .collect();
                        Some(format!(
                            "\"{vn}\" => {{\
                                 let __obj = serde::__object(__val)?;\
                                 ::core::result::Result::Ok({name}::{vn} {{ {inits} }})\
                             }}"
                        ))
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\
                     fn from_value(__v: &serde::value::Value) \
                         -> ::core::result::Result<Self, serde::DeError> {{\
                         match __v {{\
                             serde::value::Value::Str(__s) => match __s.as_str() {{\
                                 {unit_arms}\
                                 __other => ::core::result::Result::Err(serde::DeError(\
                                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\
                             }},\
                             serde::value::Value::Object(__fields) if __fields.len() == 1 => {{\
                                 let (__tag, __val) = &__fields[0];\
                                 match __tag.as_str() {{\
                                     {data_arms}\
                                     __other => ::core::result::Result::Err(serde::DeError(\
                                         ::std::format!(\
                                             \"unknown variant `{{__other}}` of {name}\"))),\
                                 }}\
                             }}\
                             __other => ::core::result::Result::Err(\
                                 serde::DeError::expected(\"{name} variant\", __other)),\
                         }}\
                     }}\
                 }}"
            )
        }
    };
    src.parse()
        .expect("serde_derive shim: generated Deserialize impl must parse")
}
