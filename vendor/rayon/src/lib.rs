//! Vendored, dependency-free shim of the `rayon` API surface this workspace
//! uses: `par_iter()` / `into_par_iter()` followed by `map`, then `collect`
//! or `fold(..).reduce(..)` / `reduce(..)`.
//!
//! `collect()` genuinely runs in parallel over `std::thread::scope`, chunked
//! by index so results land deterministically. The `fold`/`reduce` pipeline
//! runs sequentially — every call site in this workspace reduces with an
//! associative, commutative element-wise sum, so the result is identical;
//! only the speedup is forfeited. All outputs are bit-deterministic, which
//! the workspace's reproducibility tests rely on.

use std::num::NonZeroUsize;

/// Number of worker threads for parallel `collect`.
fn threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A "parallel iterator" over an eagerly collected list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The result of `ParIter::map`: items plus the mapping function.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// The result of `ParMap::fold`: a single sequentially folded accumulator.
/// (Upstream rayon produces one accumulator per split; with a sequential
/// fold there is exactly one.)
pub struct ParFold<A> {
    acc: A,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item (lazily; evaluation happens at the sink).
    pub fn map<R, F: Fn(T) -> R>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Evaluates the map in parallel and collects into `C`, preserving the
    /// input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let workers = threads().min(n.max(1));
        if workers <= 1 || n <= 1 {
            return self.items.into_iter().map(&self.f).collect();
        }
        let f = &self.f;
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        // Hand each worker an interleaved set of (index, item) pairs; the
        // output slot vector keeps results in input order.
        let mut per_worker: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
        per_worker.resize_with(workers, Vec::new);
        for (i, item) in self.items.into_iter().enumerate() {
            per_worker[i % workers].push((i, item));
        }
        let mut out_chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(i, item)| (i, f(item)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect()
        });
        for chunk in out_chunks.drain(..) {
            for (i, r) in chunk {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    }

    /// Folds all mapped items into one accumulator (sequential; upstream
    /// rayon folds per split and reduces the partials).
    pub fn fold<A, I: Fn() -> A, G: Fn(A, R) -> A>(self, init: I, fold: G) -> ParFold<A> {
        let f = &self.f;
        let acc = self
            .items
            .into_iter()
            .fold(init(), |acc, item| fold(acc, f(item)));
        ParFold { acc }
    }

    /// Reduces all mapped items with `op`, starting from `init()`.
    pub fn reduce<I: Fn() -> R, O: Fn(R, R) -> R>(self, init: I, op: O) -> R {
        let f = &self.f;
        self.items.into_iter().map(f).fold(init(), &op)
    }
}

impl<A> ParFold<A> {
    /// Combines the (single) folded accumulator with a fresh `init()`.
    pub fn reduce<I: Fn() -> A, O: Fn(A, A) -> A>(self, init: I, op: O) -> A {
        op(init(), self.acc)
    }
}

/// Conversion into a parallel iterator, by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The traits call sites want in scope.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn fold_then_reduce() {
        let total = vec![1u64, 2, 3, 4]
            .into_par_iter()
            .map(|x| x)
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10);
    }

    #[test]
    fn map_reduce() {
        let total = (0..100usize)
            .into_par_iter()
            .map(|x| x as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }
}
