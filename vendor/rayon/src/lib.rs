//! Vendored, dependency-free shim of the `rayon` API surface this workspace
//! uses: `par_iter()` / `into_par_iter()` followed by `map`, then `collect`
//! or `fold(..).reduce(..)` / `reduce(..)`.
//!
//! `collect()` genuinely runs in parallel over `std::thread::scope`, chunked
//! by index so results land deterministically. The `fold`/`reduce` pipeline
//! runs sequentially — every call site in this workspace reduces with an
//! associative, commutative element-wise sum, so the result is identical;
//! only the speedup is forfeited. All outputs are bit-deterministic, which
//! the workspace's reproducibility tests rely on.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; `0` means "no override".
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count used by parallel `collect`.
///
/// `None` restores the default (the `REX_THREADS` environment variable if
/// set, otherwise `available_parallelism`). Used by the determinism test
/// suite to prove results are independent of the thread count; the override
/// is process-global, so tests exercising several values must do so from a
/// single `#[test]` function.
pub fn set_threads_override(n: Option<usize>) {
    THREADS_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Number of worker threads for parallel `collect`.
fn threads() -> usize {
    let forced = THREADS_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("REX_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A "parallel iterator" over an eagerly collected list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The result of `ParIter::map`: items plus the mapping function.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// The result of `ParMap::fold`: a single sequentially folded accumulator.
/// (Upstream rayon produces one accumulator per split; with a sequential
/// fold there is exactly one.)
pub struct ParFold<A> {
    acc: A,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item (lazily; evaluation happens at the sink).
    pub fn map<R, F: Fn(T) -> R>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Evaluates the map in parallel and collects into `C`, preserving the
    /// input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let workers = threads().min(n.max(1));
        if workers <= 1 || n <= 1 {
            return self.items.into_iter().map(&self.f).collect();
        }
        let f = &self.f;
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        // Hand each worker an interleaved set of (index, item) pairs; the
        // output slot vector keeps results in input order.
        let mut per_worker: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
        per_worker.resize_with(workers, Vec::new);
        for (i, item) in self.items.into_iter().enumerate() {
            per_worker[i % workers].push((i, item));
        }
        let mut out_chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(i, item)| (i, f(item)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect()
        });
        for chunk in out_chunks.drain(..) {
            for (i, r) in chunk {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    }

    /// Folds all mapped items into one accumulator (sequential; upstream
    /// rayon folds per split and reduces the partials).
    pub fn fold<A, I: Fn() -> A, G: Fn(A, R) -> A>(self, init: I, fold: G) -> ParFold<A> {
        let f = &self.f;
        let acc = self
            .items
            .into_iter()
            .fold(init(), |acc, item| fold(acc, f(item)));
        ParFold { acc }
    }

    /// Reduces all mapped items with `op`, starting from `init()`.
    pub fn reduce<I: Fn() -> R, O: Fn(R, R) -> R>(self, init: I, op: O) -> R {
        let f = &self.f;
        self.items.into_iter().map(f).fold(init(), &op)
    }
}

impl<A> ParFold<A> {
    /// Combines the (single) folded accumulator with a fresh `init()`.
    pub fn reduce<I: Fn() -> A, O: Fn(A, A) -> A>(self, init: I, op: O) -> A {
        op(init(), self.acc)
    }
}

/// Conversion into a parallel iterator, by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The traits call sites want in scope.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn fold_then_reduce() {
        let total = vec![1u64, 2, 3, 4]
            .into_par_iter()
            .map(|x| x)
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10);
    }

    #[test]
    fn map_reduce() {
        let total = (0..100usize)
            .into_par_iter()
            .map(|x| x as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    /// Hand-rolled parallel chunked reduction over `std::thread` — the
    /// "ground truth" an honest rayon would compute, used to check the
    /// shim's sequential `fold(..).reduce(..)` differentially.
    fn chunked_sum_vectors(items: &[Vec<u64>], workers: usize) -> Vec<u64> {
        let width = items.first().map_or(0, Vec::len);
        let chunk = items.len().div_ceil(workers.max(1)).max(1);
        let partials: Vec<Vec<u64>> = std::thread::scope(|scope| {
            items
                .chunks(chunk)
                .map(|c| {
                    scope.spawn(move || {
                        c.iter().fold(vec![0u64; width], |mut acc, v| {
                            for (a, x) in acc.iter_mut().zip(v) {
                                *a += x;
                            }
                            acc
                        })
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        partials.into_iter().fold(vec![0u64; width], |mut acc, p| {
            for (a, x) in acc.iter_mut().zip(&p) {
                *a += x;
            }
            acc
        })
    }

    /// The shim's `fold(..).reduce(..)` must equal a genuinely parallel
    /// chunked reduction for the element-wise u64 sums used at every
    /// `fold`/`reduce` call site in this workspace (`searchsim::engine`).
    #[test]
    fn fold_reduce_matches_hand_rolled_parallel_reduction() {
        // Deterministic pseudo-random vectors (splitmix-style).
        let mut s = 0x2545_F491_4F6C_DD1Du64;
        let items: Vec<Vec<u64>> = (0..257)
            .map(|_| {
                (0..24)
                    .map(|_| {
                        s = s
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (s >> 33) % 10_000
                    })
                    .collect()
            })
            .collect();
        let width = items[0].len();

        let shim: Vec<u64> = items
            .par_iter()
            .map(|v| v.clone())
            .fold(
                || vec![0u64; width],
                |mut acc, v| {
                    for (a, x) in acc.iter_mut().zip(&v) {
                        *a += x;
                    }
                    acc
                },
            )
            .reduce(
                || vec![0u64; width],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );

        for workers in [1usize, 2, 3, 8] {
            assert_eq!(
                shim,
                chunked_sum_vectors(&items, workers),
                "shim fold/reduce diverges from {workers}-way chunked reduction"
            );
        }
    }

    /// `collect` honors the thread override and returns identical output
    /// for any worker count (single test fn: the override is global).
    #[test]
    fn collect_is_identical_across_thread_overrides() {
        let expected: Vec<u64> = (0..1000u64).map(|x| x.wrapping_mul(x) ^ 0xABCD).collect();
        for n in [1usize, 2, 3, 8] {
            super::set_threads_override(Some(n));
            let got: Vec<u64> = (0..1000u64)
                .into_par_iter()
                .map(|x| x.wrapping_mul(x) ^ 0xABCD)
                .collect();
            assert_eq!(got, expected, "collect diverged with {n} threads");
        }
        super::set_threads_override(None);
    }
}
