//! Vendored, dependency-free shim of the `serde_json` surface this
//! workspace uses: [`to_string`], [`to_string_pretty`], and [`from_str`],
//! bridged through the serde shim's [`Value`] tree.
//!
//! Floats are emitted with Rust's shortest round-trip `Display`, so
//! `f64 -> string -> f64` is exact (upstream's `float_roundtrip` behavior).
//! Integral floats therefore print without a decimal point and re-parse as
//! integers — the shim's numeric `from_value` impls accept either, so
//! serialize/deserialize round-trips still hold.

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// A serialization or deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- emitter -------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            // `{}` on f64 is shortest-round-trip; integral values print
            // without a fractional part (e.g. "2"), matching upstream's
            // integer-looking output for whole floats read back as numbers.
            out.push_str(&format!("{f}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_keyword("\\u") {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("invalid code point".into()))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("invalid code point".into()))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            // Integers parse losslessly: u64 first (keeps 64-bit seeds
            // exact), then i64 for negatives, f64 only on overflow.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_u64_seed_exactly() {
        let seed: u64 = 15164068430237181204;
        let json = to_string(&seed).unwrap();
        assert_eq!(json, "15164068430237181204");
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn round_trips_awkward_float() {
        let x: f64 = 0.5379914052582881;
        let json = to_string(&x).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn integral_float_survives_round_trip() {
        let x: f64 = 2.0;
        let json = to_string(&x).unwrap();
        assert_eq!(json, "2");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn pretty_print_shape() {
        let v = vec![1u32, 2];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = String::from("a\"b\\c\nd\te\u{1}");
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escape_parses() {
        let back: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "é😀");
    }

    #[test]
    fn options_and_nulls() {
        let x: Option<u32> = None;
        assert_eq!(to_string(&x).unwrap(), "null");
        let back: Option<u32> = from_str("null").unwrap();
        assert_eq!(back, None);
        let back: Option<u32> = from_str("7").unwrap();
        assert_eq!(back, Some(7));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 2").is_err());
    }
}
