//! Vendored, dependency-free shim of the `criterion` surface this
//! workspace uses: `Criterion`, `benchmark_group` + `sample_size` +
//! `throughput` + `finish`, `bench_function`, `Bencher::{iter,
//! iter_batched}`, `BatchSize`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology (simplified from upstream, adequate for A/B throughput
//! comparisons on one machine):
//!
//! * warm-up (~0.3 s), then auto-calibrate iterations-per-sample so one
//!   sample takes ~10 ms;
//! * collect `sample_size` samples (default 20) of mean ns/iter;
//! * report median, min, and max sample means on stdout in a stable
//!   `name  median_ns min_ns max_ns` format that downstream scripts can
//!   parse.
//!
//! `cargo bench` filter arguments are honored (substring match), as is
//! `--bench` noise in argv. No files are written; redirect stdout to keep
//! results.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (shim: one setup per iteration
/// regardless of variant; setup time is excluded from measurement either
/// way, which is the property call sites rely on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state (e.g. a cloned `Assignment`).
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Exactly one setup per measured routine call.
    PerIteration,
}

/// Per-iteration work declared for a group, so results can be reported as
/// a rate alongside raw ns/iter (upstream: `Throughput`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Each measured iteration processes this many logical elements
    /// (events, queries, rows); reported as `Melem/s`.
    Elements(u64),
    /// Each measured iteration processes this many bytes; reported as
    /// `MiB/s`.
    Bytes(u64),
}

/// The measurement driver handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    /// Total measured time of the routine across `iters` calls.
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` back-to-back `iters` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` on fresh `setup()` output each iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` / `cargo bench <filter>` pass the filter
        // in argv; skip flag-like and harness-internal arguments.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.ends_with(".rs"));
        Criterion {
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Upstream-compatibility no-op (config handled at construction).
    pub fn configure_from_args(&mut self) -> &mut Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up and calibration: find iters-per-sample giving ~10 ms.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warmup_deadline = Instant::now() + Duration::from_millis(300);
        let target = Duration::from_millis(10);
        loop {
            f(&mut bencher);
            if bencher.elapsed >= target || Instant::now() >= warmup_deadline {
                break;
            }
            let grow = if bencher.elapsed.is_zero() {
                8.0
            } else {
                (target.as_secs_f64() / bencher.elapsed.as_secs_f64()).clamp(1.5, 8.0)
            };
            bencher.iters = ((bencher.iters as f64) * grow).ceil() as u64;
        }
        let iters = bencher.iters.max(1);
        let mut means_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            means_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        means_ns.sort_by(|a, b| a.total_cmp(b));
        let median = means_ns[means_ns.len() / 2];
        let (min, max) = (means_ns[0], means_ns[means_ns.len() - 1]);
        // Rate from the median sample: work-per-iteration over ns-per-
        // iteration (upstream reports the same derived figure).
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!(" {:.3} Melem/s", n as f64 / median * 1e9 / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!(" {:.1} MiB/s", n as f64 / median * 1e9 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{name:<44} {:>14} ns/iter{rate} (min {:.1}, max {:.1}, {} samples x {} iters)",
            format!("{median:.1}"),
            min,
            max,
            sample_size,
            iters
        );
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares the per-iteration work of subsequent benchmarks in this
    /// group; their reports gain a derived rate column.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size.unwrap_or(self.parent.default_sample_size);
        let throughput = self.throughput;
        self.parent.run_one(&full, sample_size, throughput, f);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("shim/trivial", |b| b.iter(|| 1u64 + 1));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        trivial_bench(&mut c);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.throughput(Throughput::Elements(1000));
        g.bench_function("inner", |b| b.iter(|| 2u64 * 2));
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            default_sample_size: 2,
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 0u8)
        });
        assert!(!ran);
    }
}
