//! Vendored, dependency-free shim of the `proptest` surface this workspace
//! uses: the `proptest!` macro, `Strategy` + `prop_map`, `any`, numeric
//! ranges, `Just`, `prop_oneof!`, `collection::vec`, `prop_assert*`, and
//! `prop_assume!`.
//!
//! Differences from upstream, deliberate for an offline test harness:
//!
//! * **No shrinking.** A failing case reports its assertion message; since
//!   case generation is a pure function of the test name (FNV-1a seeded),
//!   failures reproduce exactly on re-run.
//! * **No persistence.** `*.proptest-regressions` files are not read or
//!   written; regressions worth keeping are promoted to named `#[test]`s.
//! * `PROPTEST_CASES` still overrides the per-test case count.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A generator of values for one test argument.
    ///
    /// Upstream strategies produce shrinkable value *trees*; this shim
    /// produces plain values.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy for storage in a [`Union`] (helper for
    /// `prop_oneof!`; a plain `Box::new` coercion would leave `Value`
    /// unconstrained at the macro call site).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_half_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_half_range_strategy!(i64, i32, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_float_range_strategy!(f64, f32);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H),
        (A, B, C, D, E, F, G, H, I),
        (A, B, C, D, E, F, G, H, I, J),
    );
}

/// `any::<T>()` — a uniform strategy over `T`'s whole domain.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{RngCore, RngExt};
    use std::marker::PhantomData;

    /// Types `any::<T>()` can produce.
    pub trait ArbitraryValue: Sized {
        /// Draws a uniformly distributed value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Uniform in [0, 1): finite, well-behaved in arithmetic-heavy
            // properties (upstream's any::<f64>() includes infinities/NaN,
            // which no test in this workspace relies on).
            rng.random::<f64>()
        }
    }

    impl ArbitraryValue for f32 {
        fn arbitrary(rng: &mut StdRng) -> f32 {
            rng.random::<f32>()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A uniform strategy over all of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{RngExt, SampleRange};

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A `Vec` of `element`-generated values whose length is drawn from
    /// `size` (a `usize` range).
    pub fn vec<S: Strategy, R: SampleRange<usize> + Clone>(
        element: S,
        size: R,
    ) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SampleRange<usize> + Clone> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The runner: configuration, error type, and the per-test case loop.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the whole test fails.
        Fail(String),
        /// `prop_assume!` filtered the inputs — the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (filtered-out) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// FNV-1a over the test name: a deterministic per-test seed, so every
    /// run (and every failure) reproduces exactly.
    fn name_seed(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` until `config.cases` successes (rejections don't count),
    /// panicking on the first failure. `PROPTEST_CASES` overrides the count.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let cases: u32 = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(config.cases);
        let mut rng = StdRng::seed_from_u64(name_seed(name));
        let mut passed = 0u32;
        let mut attempts = 0u32;
        let max_attempts = cases.saturating_mul(10).saturating_add(100);
        while passed < cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "{name}: gave up after {attempts} attempts \
                 ({passed}/{cases} cases passed, rest rejected by prop_assume!)"
            );
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: case {} of {cases} failed: {msg}", passed + 1)
                }
            }
        }
    }
}

/// Everything test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Accepts an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                let __case = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)` — fails the
/// current case (early-returns `Err`) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(left, right)` — fails the case when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// `prop_assert_ne!(left, right)` — fails the case when `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// `prop_assume!(cond)` — rejects (skips) the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// `prop_oneof![a, b, c]` — uniform choice between strategies producing the
/// same value type. (Upstream's `weight => strategy` arms are not used in
/// this workspace and not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn union_covers_all_options() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let u = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro pipeline end-to-end: tuples, prop_map, vec, assume.
        #[test]
        fn macro_pipeline_works(
            (a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x, y)),
            v in crate::collection::vec(0u8..4, 0..6),
            x in any::<u64>(),
        ) {
            prop_assume!(a + b < 19);
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 6);
            for e in &v {
                prop_assert!(*e < 4);
            }
            prop_assert_eq!(x, x);
            prop_assert_ne!(v.len(), 100usize);
        }
    }
}
