//! Vendored, dependency-free shim of the `serde` surface this workspace
//! uses: `#[derive(Serialize, Deserialize)]` plus the `serde_json`
//! string round-trip. The build environment has no registry access, so the
//! workspace resolves `serde` to this path crate.
//!
//! Unlike upstream serde's zero-copy visitor architecture, this shim goes
//! through an owned [`value::Value`] tree — exactly what a JSON artifact
//! round-trip needs, at a fraction of the machinery. The derive macro (in
//! the sibling `serde_derive` shim) generates `to_value`/`from_value`
//! impls with upstream-compatible JSON *shapes*: structs are objects,
//! newtype structs are transparent, unit enum variants are strings, and
//! data-carrying variants are single-key objects.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model all (de)serialization goes through.
pub mod value {
    /// An owned JSON-like value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A non-negative integer (u64 range — seeds round-trip exactly).
        UInt(u64),
        /// A negative integer.
        Int(i64),
        /// A float (finite; non-finite serializes as `null`, as in
        /// upstream serde_json).
        Float(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object; insertion order is preserved.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks up a key in an object value.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
    }
}

use value::Value;

/// A deserialization error (the only fallible direction).
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing what was expected vs found.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {found:?}"))
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into an owned value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent from its object. `Option`
    /// fields deserialize to `None` (matching upstream serde_json's
    /// behavior); everything else is an error.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field `{field}`")))
    }
}

// ---- derive support (referenced by generated code) ----------------------

/// Extracts the field list of an object value.
#[doc(hidden)]
pub fn __object(v: &Value) -> Result<&[(String, Value)], DeError> {
    match v {
        Value::Object(fields) => Ok(fields),
        other => Err(DeError::expected("object", other)),
    }
}

/// Extracts the element list of an array value.
#[doc(hidden)]
pub fn __array(v: &Value) -> Result<&[Value], DeError> {
    match v {
        Value::Array(items) => Ok(items),
        other => Err(DeError::expected("array", other)),
    }
}

/// Deserializes a named struct field, delegating absent keys to
/// [`Deserialize::from_missing`].
#[doc(hidden)]
pub fn __field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => T::from_missing(name),
    }
}

/// Deserializes a named struct field marked `#[serde(default)]`: an
/// absent key yields `default` (the field's `Default::default()`, or the
/// matching field of the container's `Self::default()` for a
/// container-level attribute) instead of an error.
#[doc(hidden)]
pub fn __field_or<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
    default: T,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => Ok(default),
    }
}

/// Deserializes a positional tuple element.
#[doc(hidden)]
pub fn __element<T: Deserialize>(items: &[Value], idx: usize) -> Result<T, DeError> {
    match items.get(idx) {
        Some(v) => T::from_value(v).map_err(|e| DeError(format!("element {idx}: {e}"))),
        None => Err(DeError(format!("missing tuple element {idx}"))),
    }
}

// ---- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::UInt(n) => *n,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for i64")))?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        __array(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let found = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, found {found}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = __array(v)?;
                Ok(($(__element::<$t>(items, $n)?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);
