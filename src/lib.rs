//! # resource-exchange
//!
//! Facade crate for the reproduction of *"Improving Load Balance via
//! Resource Exchange in Large-Scale Search Engines"* (Duan, Li, Marbach,
//! Wang, Liu — ICPP 2020).
//!
//! The workspace is organized as one crate per subsystem; this crate
//! re-exports them under stable paths and hosts the runnable examples and
//! the cross-crate integration tests:
//!
//! * [`cluster`] — machines, shards, resources, assignments, and the
//!   transient-aware migration planner/simulator,
//! * [`searchsim`] — the mini search engine producing "real-like"
//!   workloads,
//! * [`workload`] — synthetic and searchsim-backed instance generators,
//! * [`lns`] — the generic adaptive large-neighborhood-search framework,
//! * [`solver`] — the IP model, lower bounds, and exact branch-and-bound,
//! * [`core`] — **SRA**, the paper's exchange-aware reassignment
//!   algorithm,
//! * [`baselines`] — greedy / local-search / FFD / random-walk
//!   comparators,
//! * [`runtime`] — the closed-loop cluster runtime: a deterministic
//!   discrete-event simulator that puts the controller, SRA, timed
//!   migrations, and fault injection in one reproducible loop,
//! * [`router`] — the query-level event engine: individual query
//!   arrivals, per-shard fan-out, and pluggable replica routing (random /
//!   round-robin / power-of-d / prequal / token) at millions of simulated
//!   events per second, with optional mid-run SRA reassignment.
//!
//! ## Quickstart
//!
//! ```
//! use resource_exchange::cluster::InstanceBuilder;
//! use resource_exchange::core::{solve, SraConfig};
//!
//! // Two loaded machines, one borrowed exchange machine.
//! let mut b = InstanceBuilder::new(1).alpha(0.1);
//! let m0 = b.machine(&[10.0]);
//! let _m1 = b.machine(&[10.0]);
//! let _x = b.exchange_machine(&[10.0]);
//! for _ in 0..8 {
//!     b.shard(&[1.0], 1.0, m0);
//! }
//! let inst = b.build().unwrap();
//!
//! let result = solve(&inst, &SraConfig { iters: 2_000, ..Default::default() }).unwrap();
//! assert!(result.final_report.peak < result.initial_report.peak);
//! ```

pub use rex_baselines as baselines;
pub use rex_cluster as cluster;
pub use rex_core as core;
pub use rex_lns as lns;
pub use rex_obs as obs;
pub use rex_router as router;
pub use rex_runtime as runtime;
pub use rex_searchsim as searchsim;
pub use rex_solver as solver;
pub use rex_workload as workload;
