//! `rex` — the command-line front end.
//!
//! ```text
//! rex generate --family correlated --machines 24 --exchange 3 --shards 240 \
//!              --stringency 0.8 --alpha 0.1 --seed 1 --out inst.json
//! rex inspect  --inst inst.json
//! rex solve    --inst inst.json --iters 8000 --workers 4 --out solution.json
//! rex baseline --inst inst.json --method greedy
//! rex verify   --inst inst.json --solution solution.json
//! rex simulate --ticks 10000 --controller sra --crash-at 3000 --out run.json
//! rex simulate --ticks 10000 --trace trace.jsonl --quiet
//! rex trace    --inst inst.json --iters 4000 --out trace.jsonl
//! ```
//!
//! Instances and solutions are JSON artifacts (bit-exact f64 round-trips),
//! so a solve on one machine can be verified on another, and two same-seed
//! `simulate` runs write byte-identical metrics files.
//!
//! Argument parsing is table-driven ([`cli`]): every command declares its
//! flag vocabulary in one registry, the solver commands share their flag
//! groups, and anything unrecognized is rejected with an error instead of
//! being silently ignored. Solver flags are validated once, at the
//! [`SolveOptions`] boundary, before any search starts.

mod cli;

use cli::{get, get_or, has, parse, parse_args, spec_of};
use resource_exchange::baselines::{
    FfdRepacker, GreedyRebalancer, LocalSearchRebalancer, Rebalancer,
};
use resource_exchange::cluster::{
    verify_schedule, Assignment, BalanceReport, CrashSpec, Instance, MachineId, MigrationPlan,
    ScenarioSpec, SpikeSpec, SraSpec, WorkloadSpec,
};
use resource_exchange::core::{solve_traced, solve_with_drain, SolveOptions, SraConfig};
use resource_exchange::obs::Recorder;
use resource_exchange::router::{self, FlashCrowd, PolicyKind, RouterConfig, SraCoupling};
use resource_exchange::runtime::{
    trace, DriftSpec, FaultSpec, MetricsExport, ReplayScript, RuntimeConfig, Simulation,
};
use resource_exchange::workload::io;
use resource_exchange::workload::synthetic::{
    generate, generate_workload, DemandFamily, MachineProfile, Placement, SynthConfig,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

/// A solved reassignment, as stored on disk.
#[derive(Serialize, Deserialize)]
struct SolutionFile {
    /// Final placement (machine per shard).
    placement: Vec<MachineId>,
    /// The migration schedule reaching it.
    plan: MigrationPlan,
    /// Machines handed back.
    returned: Vec<MachineId>,
}

fn load_instance(args: &HashMap<String, String>) -> Result<Instance, String> {
    let path = get(args, "inst")?;
    io::load(Path::new(path)).map_err(|e| format!("loading {path}: {e}"))
}

/// Loads and validates an engine-neutral [`WorkloadSpec`] file. The typed
/// [`ScenarioError`](resource_exchange::cluster::ScenarioError) surfaces
/// here with the file name attached instead of panicking downstream.
fn load_workload(path: &str) -> Result<WorkloadSpec, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("loading {path}: {e}"))?;
    let w: WorkloadSpec =
        serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    w.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(w)
}

/// The instance a workload-mode run starts from: `--inst` wins, a fleet
/// table synthesizes its heterogeneous machines through
/// [`generate_workload`], and a degenerate spec falls back to the plain
/// synth flags — always seeded by the workload's scenario so the run is a
/// pure function of the spec file.
fn workload_instance(
    args: &HashMap<String, String>,
    w: &WorkloadSpec,
    base: SynthConfig,
) -> Result<Instance, String> {
    if args.contains_key("inst") {
        return load_instance(args);
    }
    let cfg = SynthConfig {
        n_machines: parse(
            get_or(args, "machines", &base.n_machines.to_string()),
            "usize",
        )?,
        n_exchange: parse(
            get_or(args, "exchange", &base.n_exchange.to_string()),
            "usize",
        )?,
        n_shards: parse(get_or(args, "shards", &base.n_shards.to_string()), "usize")?,
        seed: w.scenario.seed,
        ..base
    };
    if w.fleet.is_some() {
        generate_workload(w, &cfg).map_err(|e| e.to_string())
    } else {
        generate(&cfg).map_err(|e| e.to_string())
    }
}

/// Resolves the workload-plane inputs shared by `simulate` and `converge`:
/// either a spec file (`--workload`, optionally recording the realized
/// stream) or a recorded trace (`--replay-trace`, self-contained — the
/// header carries the spec and the exact starting instance).
fn workload_inputs(
    args: &HashMap<String, String>,
    base: SynthConfig,
) -> Result<(WorkloadSpec, Instance, Option<ReplayScript>), String> {
    if args.contains_key("workload") && args.contains_key("replay-trace") {
        return Err("choose one of --workload / --replay-trace (a trace embeds its spec)".into());
    }
    if let Some(path) = args.get("replay-trace") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("loading {path}: {e}"))?;
        let (w, inst, lines) = trace::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
        Ok((w, inst, Some(ReplayScript::from_lines(&lines))))
    } else {
        let w = load_workload(get(args, "workload")?)?;
        let inst = workload_instance(args, &w, base)?;
        Ok((w, inst, None))
    }
}

/// Builds the validated solver configuration from the shared solver flags
/// (`--iters`, `--workers`, `--partitions`, `--depth`, `--seed`) — the
/// one config path `solve` and `trace` have in common.
fn solver_config(
    args: &HashMap<String, String>,
    default_iters: &str,
    inst: &Instance,
) -> Result<SraConfig, String> {
    SolveOptions::new()
        .iters(parse(get_or(args, "iters", default_iters), "u64")?)
        .workers(parse(get_or(args, "workers", "1"), "usize")?)
        .partitions(parse(get_or(args, "partitions", "0"), "usize")?)
        .depth(parse(get_or(args, "depth", "1"), "usize")?)
        .seed(parse(get_or(args, "seed", "42"), "u64")?)
        .build_for(inst)
        .map_err(|e| e.to_string())
}

fn cmd_generate(args: &HashMap<String, String>) -> Result<(), String> {
    let family = match get_or(args, "family", "correlated") {
        "uniform" => DemandFamily::Uniform,
        "zipf" => DemandFamily::Zipf,
        "correlated" => DemandFamily::Correlated,
        "big-shards" => DemandFamily::BigShards,
        other => return Err(format!("unknown family `{other}`")),
    };
    let placement = match get_or(args, "placement", "hotspot") {
        "hotspot" => Placement::Hotspot(parse(get_or(args, "hot-fraction", "0.4"), "f64")?),
        "balanced" => Placement::BalancedBfd,
        "drift" => Placement::Drift,
        other => return Err(format!("unknown placement `{other}`")),
    };
    let cfg = SynthConfig {
        n_machines: parse(get_or(args, "machines", "16"), "usize")?,
        n_exchange: parse(get_or(args, "exchange", "2"), "usize")?,
        n_shards: parse(get_or(args, "shards", "160"), "usize")?,
        dims: parse(get_or(args, "dims", "3"), "usize")?,
        stringency: parse(get_or(args, "stringency", "0.75"), "f64")?,
        alpha: parse(get_or(args, "alpha", "0.1"), "f64")?,
        seed: parse(get_or(args, "seed", "0"), "u64")?,
        family,
        placement,
        profile: match get_or(args, "profile", "homogeneous") {
            "homogeneous" => MachineProfile::Homogeneous,
            "two-tier" => MachineProfile::TwoTier {
                big_fraction: 0.25,
                ratio: 2.0,
            },
            "big-exchange" => MachineProfile::BigExchange { factor: 2.0 },
            other => return Err(format!("unknown profile `{other}`")),
        },
    };
    let inst = generate(&cfg).map_err(|e| e.to_string())?;
    let out = get(args, "out")?;
    io::save(&inst, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} machines, {} shards) to {out}",
        inst.label,
        inst.n_machines(),
        inst.n_shards()
    );
    Ok(())
}

fn cmd_inspect(args: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(args)?;
    let asg = Assignment::from_initial(&inst);
    let report = BalanceReport::compute(&inst, &asg);
    println!("label:      {}", inst.label);
    println!(
        "machines:   {} (+{} exchange)",
        inst.n_machines() - inst.n_exchange(),
        inst.n_exchange()
    );
    println!("shards:     {}", inst.n_shards());
    println!("dims:       {}", inst.dims);
    println!("k_return:   {}", inst.k_return);
    println!("alpha:      {}", inst.alpha);
    println!("stringency: {:.4}", inst.stringency());
    println!("initial:    {report}");
    Ok(())
}

fn cmd_solve(args: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(args)?;
    let cfg = solver_config(args, "10000", &inst)?;
    // --drain 3,7 marks machines 3 and 7 for decommission.
    let drain: Vec<MachineId> = match args.get("drain") {
        None => Vec::new(),
        Some(list) => list
            .split(',')
            .map(|x| parse::<u32>(x.trim(), "machine id").map(MachineId))
            .collect::<Result<_, _>>()?,
    };
    let res = solve_with_drain(&inst, &cfg, &drain).map_err(|e| e.to_string())?;
    if !drain.is_empty() {
        println!("drained: {drain:?}");
    }
    println!("initial: {}", res.initial_report);
    println!("final:   {}", res.final_report);
    println!(
        "improvement {:.1}%, migration: {}, returned {:?}",
        100.0 * res.peak_improvement(),
        res.migration,
        res.returned_machines
    );
    if let Some(out) = args.get("out") {
        let file = SolutionFile {
            placement: res.assignment.placement().to_vec(),
            plan: res.plan,
            returned: res.returned_machines,
        };
        std::fs::write(
            out,
            serde_json::to_string_pretty(&file).map_err(|e| e.to_string())?,
        )
        .map_err(|e| e.to_string())?;
        println!("solution written to {out}");
    }
    Ok(())
}

fn cmd_baseline(args: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(args)?;
    let method: Box<dyn Rebalancer> = match get_or(args, "method", "greedy") {
        "greedy" => Box::new(GreedyRebalancer::default()),
        "local-search" => Box::new(LocalSearchRebalancer::default()),
        "ffd" => Box::new(FfdRepacker::default()),
        other => return Err(format!("unknown method `{other}`")),
    };
    let res = method.rebalance(&inst).map_err(|e| e.to_string())?;
    println!("method:  {}", method.name());
    println!("initial: {}", res.initial_report);
    println!("final:   {}", res.final_report);
    println!(
        "improvement {:.1}%, schedulable: {}, migration: {}",
        100.0 * res.peak_improvement(),
        res.schedulable,
        res.migration
    );
    Ok(())
}

fn cmd_verify(args: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(args)?;
    let path = get(args, "solution")?;
    let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let sol: SolutionFile = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    verify_schedule(&inst, &inst.initial, &sol.placement, &sol.plan).map_err(|e| e.to_string())?;
    let asg = Assignment::from_placement(&inst, sol.placement).map_err(|e| e.to_string())?;
    asg.check_target(&inst).map_err(|e| e.to_string())?;
    for m in &sol.returned {
        if !asg.is_vacant(*m) {
            return Err(format!("returned machine {m} is not vacant"));
        }
    }
    if sol.returned.len() < inst.k_return {
        return Err(format!(
            "only {} machines returned, {} required",
            sol.returned.len(),
            inst.k_return
        ));
    }
    println!(
        "OK: schedule verifies, target feasible, {} machines returned",
        sol.returned.len()
    );
    println!("final: {}", BalanceReport::compute(&inst, &asg));
    Ok(())
}

/// Runs the closed-loop simulator over an instance (loaded from `--inst`
/// or synthesized on the spot) and optionally writes the metrics JSON.
fn cmd_simulate(args: &HashMap<String, String>) -> Result<(), String> {
    if args.contains_key("workload") || args.contains_key("replay-trace") {
        return cmd_simulate_workload(args);
    }
    if args.contains_key("record-trace") {
        return Err("--record-trace needs --workload (the trace header embeds the spec)".into());
    }
    let seed = parse(get_or(args, "seed", "42"), "u64")?;
    let inst = if args.contains_key("inst") {
        load_instance(args)?
    } else {
        generate(&SynthConfig {
            n_machines: parse(get_or(args, "machines", "16"), "usize")?,
            n_exchange: parse(get_or(args, "exchange", "2"), "usize")?,
            n_shards: parse(get_or(args, "shards", "160"), "usize")?,
            placement: Placement::Hotspot(0.4),
            seed,
            ..Default::default()
        })
        .map_err(|e| e.to_string())?
    };
    let mut faults = Vec::new();
    if args.contains_key("crash-at") {
        faults.push(FaultSpec::Crash {
            at: parse(get(args, "crash-at")?, "u64")?,
            machine: parse(get_or(args, "crash-machine", "0"), "u32")?,
            recover_at: args
                .get("recover-at")
                .map(|v| parse(v, "u64"))
                .transpose()?,
        });
    }
    if args.contains_key("spike-at") {
        faults.push(FaultSpec::Spike {
            at: parse(get(args, "spike-at")?, "u64")?,
            duration: parse(get_or(args, "spike-duration", "300"), "u64")?,
            factor: parse(get_or(args, "spike-factor", "1.5"), "f64")?,
            shard_fraction: parse(get_or(args, "spike-fraction", "0.1"), "f64")?,
        });
    }
    // Demand drift is on by default (the closed loop exists because demand
    // moves); --no-drift isolates fault handling from drift.
    let drift = if has(args, "no-drift") {
        None
    } else {
        Some(DriftSpec {
            every_ticks: parse(get_or(args, "drift-every", "400"), "u64")?,
            sigma: 0.15,
            target_utilization: inst.stringency().clamp(0.3, 0.9),
        })
    };
    let mut cfg = RuntimeConfig {
        ticks: parse(get_or(args, "ticks", "10000"), "u64")?,
        seed,
        qps: parse(get_or(args, "qps", "8"), "f64")?,
        faults,
        drift,
        ..Default::default()
    };
    cfg.controller.policy = get_or(args, "controller", "sra").parse()?;
    if has(args, "hotshard") {
        cfg.hotshard.enabled = true;
        cfg.hotshard.split_fraction = parse(get_or(args, "split-threshold", "0.45"), "f64")?;
        cfg.hotshard.merge_fraction = parse(get_or(args, "merge-threshold", "0.2"), "f64")?;
        cfg.hotshard.poll_interval = parse(get_or(args, "hotshard-poll", "25"), "u64")?;
        cfg.hotshard.operator_expiry_ticks = parse(get_or(args, "hotshard-expiry", "400"), "u64")?;
    }
    // `Simulation::new` consumes the config; remember whether the
    // hot-shard control plane is on — the summary gates its block on the
    // plane being *active*, not on its counters being nonzero.
    let hotshard_enabled = cfg.hotshard.enabled;
    let sim = Simulation::new(inst, cfg);
    let mut rec = if args.contains_key("trace") {
        Recorder::active()
    } else {
        Recorder::noop()
    };
    let export = sim.run_traced(&mut rec);
    if let Some(path) = args.get("trace") {
        std::fs::write(path, rec.to_jsonl()).map_err(|e| e.to_string())?;
        if !has(args, "quiet") {
            print!("{}", rec.summary());
            println!("trace written to {path}");
        }
    }
    if let Some(out) = args.get("out") {
        std::fs::write(out, export.to_json()).map_err(|e| e.to_string())?;
    }
    if !has(args, "quiet") {
        print!("{}", simulate_summary(&export, hotshard_enabled));
        if let Some(out) = args.get("out") {
            println!("metrics written to {out}");
        }
    }
    Ok(())
}

/// The workload-plane arm of `simulate`: one engine-neutral spec file (or
/// a recorded trace) drives the whole run — fleet table, rack crashes,
/// diurnal envelope, popularity drift. The scenario flags (`--ticks`,
/// `--crash-at`, ...) are owned by the spec and ignored here; the synth
/// flags still size a degenerate (fleet-less) spec's instance.
fn cmd_simulate_workload(args: &HashMap<String, String>) -> Result<(), String> {
    let (w, inst, replay) = workload_inputs(
        args,
        SynthConfig {
            n_machines: 16,
            n_exchange: 2,
            n_shards: 160,
            placement: Placement::Hotspot(0.4),
            ..Default::default()
        },
    )?;
    let mut sim = Simulation::from_workload(inst.clone(), &w);
    if let Some(script) = replay {
        sim.set_replay(script);
    }
    let mut rec = if args.contains_key("trace") {
        Recorder::active()
    } else {
        Recorder::noop()
    };
    let (export, lines) = if args.contains_key("record-trace") {
        sim.run_recorded(&mut rec)
    } else {
        (sim.run_traced(&mut rec), Vec::new())
    };
    if let Some(path) = args.get("record-trace") {
        std::fs::write(path, trace::write_jsonl(&w, &inst, &lines)).map_err(|e| e.to_string())?;
        if !has(args, "quiet") {
            println!("workload trace ({} events) written to {path}", lines.len());
        }
    }
    if let Some(path) = args.get("trace") {
        std::fs::write(path, rec.to_jsonl()).map_err(|e| e.to_string())?;
        if !has(args, "quiet") {
            print!("{}", rec.summary());
            println!("trace written to {path}");
        }
    }
    if let Some(out) = args.get("out") {
        std::fs::write(out, export.to_json()).map_err(|e| e.to_string())?;
    }
    if !has(args, "quiet") {
        print!("{}", simulate_summary(&export, false));
        if let Some(out) = args.get("out") {
            println!("metrics written to {out}");
        }
    }
    Ok(())
}

/// The human-readable `simulate` roll-up. The hot-shard block appears iff
/// the control plane was enabled (`--hotshard`) — an active-but-idle plane
/// reports its zeros, a disabled plane stays silent even though the
/// counters exist in the export either way.
fn simulate_summary(export: &MetricsExport, hotshard_enabled: bool) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} | policy {} seed {} ticks {}",
        export.meta.instance, export.meta.policy, export.meta.seed, export.meta.ticks
    );
    let _ = writeln!(
        s,
        "queries: {} arrived, {} degraded | latency p50 {:.2} p95 {:.2} p99 {:.2}",
        export.counters.queries_arrived,
        export.counters.queries_degraded,
        export.latency.p50,
        export.latency.p95,
        export.latency.p99
    );
    let _ = writeln!(
        s,
        "rebalances: {} triggered, {} completed, {} aborted | evacuations {} | traffic {:.1}",
        export.counters.rebalances_triggered,
        export.counters.rebalances_completed,
        export.counters.rebalances_aborted,
        export.counters.evacuations,
        export.counters.migration_traffic
    );
    if hotshard_enabled {
        let _ = writeln!(
            s,
            "hotshard: {} splits, {} merges, {} migrations | expired {} cancelled {}",
            export.counters.shard_splits,
            export.counters.shard_merges,
            export.counters.hotshard_migrations,
            export.counters.hotshard_expired,
            export.counters.hotshard_cancelled
        );
    }
    let _ = writeln!(
        s,
        "peak: initial {:.4} final {:.4} steady-state {:.4} | transient violations {}",
        export.initial_report.peak,
        export.final_report.peak,
        export.steady_state_peak(),
        export.counters.transient_violations
    );
    s
}

/// Runs the query-level routing engine (`rex_router`) over an instance
/// (loaded from `--inst` or synthesized on the spot) and prints the run
/// report; `--out` writes the report JSON, `--trace` the obs event stream.
/// Same flags → byte-identical outputs.
fn cmd_route(args: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = args.get("workload") {
        // Workload mode: the spec's scenario plane owns every engine knob
        // (horizon, qps, spike, SRA coupling); only the policy flag stays.
        let w = load_workload(path)?;
        if w.load.is_some() || !w.rack_crashes.is_empty() {
            return Err(
                "route drives the open-loop router: the load-script and rack-crash \
                 planes need a closed loop — use simulate or converge"
                    .into(),
            );
        }
        let inst = workload_instance(
            args,
            &w,
            SynthConfig {
                n_machines: 16,
                n_exchange: 0,
                n_shards: 160,
                dims: 1,
                stringency: 0.55,
                placement: Placement::Hotspot(0.3),
                ..Default::default()
            },
        )?;
        let policy = get_or(args, "policy", "power_of_d").parse::<PolicyKind>()?;
        let cfg = RouterConfig::from_scenario(&w.scenario, policy);
        return run_route(args, &inst, &cfg);
    }
    let seed = parse(get_or(args, "seed", "42"), "u64")?;
    let inst = if args.contains_key("inst") {
        load_instance(args)?
    } else {
        generate(&SynthConfig {
            n_machines: parse(get_or(args, "machines", "16"), "usize")?,
            n_exchange: parse(get_or(args, "exchange", "0"), "usize")?,
            n_shards: parse(get_or(args, "shards", "160"), "usize")?,
            dims: 1,
            stringency: 0.55,
            placement: Placement::Hotspot(0.3),
            seed,
            ..Default::default()
        })
        .map_err(|e| e.to_string())?
    };
    let spike = if args.contains_key("spike-at") {
        Some(FlashCrowd {
            at_us: parse(get(args, "spike-at")?, "u64")?,
            duration_us: parse(get_or(args, "spike-duration", "10000"), "u64")?,
            factor: parse(get_or(args, "spike-factor", "3"), "f64")?,
            shard_fraction: parse(get_or(args, "spike-fraction", "0.1"), "f64")?,
        })
    } else {
        None
    };
    let sra = if has(args, "sra") {
        Some(SraCoupling {
            every_us: parse(get_or(args, "sra-every", "10000"), "u64")?,
            iters: parse(get_or(args, "sra-iters", "400"), "u64")?,
            ..Default::default()
        })
    } else {
        None
    };
    let cfg = RouterConfig {
        horizon_us: parse(get_or(args, "horizon", "50000"), "u64")?,
        qps: parse(get_or(args, "qps", "30000"), "f64")?,
        replication: parse(get_or(args, "replication", "3"), "usize")?,
        fanout: parse(get_or(args, "fanout", "4"), "usize")?,
        base_service_us: parse(get_or(args, "service", "400"), "f64")?,
        policy: get_or(args, "policy", "power_of_d").parse::<PolicyKind>()?,
        d_choices: parse(get_or(args, "d", "2"), "usize")?,
        spike,
        sra,
        seed,
        ..Default::default()
    };
    run_route(args, &inst, &cfg)
}

/// Runs the router over a finished config and prints/writes the report —
/// the tail both `route` arms (flag-built and workload-built) share.
fn run_route(
    args: &HashMap<String, String>,
    inst: &Instance,
    cfg: &RouterConfig,
) -> Result<(), String> {
    let mut rec = if args.contains_key("trace") {
        Recorder::active()
    } else {
        Recorder::noop()
    };
    let report = router::run_traced(inst, cfg, &mut rec);
    if let Some(path) = args.get("trace") {
        std::fs::write(path, rec.to_jsonl()).map_err(|e| e.to_string())?;
        if !has(args, "quiet") {
            println!("trace written to {path}");
        }
    }
    if let Some(out) = args.get("out") {
        std::fs::write(out, report.to_json()).map_err(|e| e.to_string())?;
    }
    if !has(args, "quiet") {
        println!(
            "route: policy {} seed {} | {} machines, {} shards x{} replicas, fanout {}",
            report.policy,
            report.seed,
            inst.n_machines(),
            inst.n_shards(),
            cfg.replication,
            cfg.fanout
        );
        println!(
            "queries: {} ({} subrequests, {} events) | peak in flight {}",
            report.queries, report.subrequests, report.events, report.peak_in_flight
        );
        println!(
            "latency (us): mean {:.1} p50 {:.1} p95 {:.1} p99 {:.1} max {:.1}",
            report.mean_us, report.p50_us, report.p95_us, report.p99_us, report.max_us
        );
        if report.probes_sent > 0 {
            println!(
                "probes: {} sent, {} replies | pool {} hit / {} miss | {} expired, {} exhausted, {} hot-picks",
                report.probes_sent,
                report.probe_replies,
                report.pool_hits,
                report.pool_misses,
                report.probes_expired,
                report.probes_exhausted,
                report.hot_picks
            );
        }
        if report.sra_solves > 0 {
            println!(
                "sra: {} solves, {} replica moves",
                report.sra_solves, report.sra_moves
            );
        }
        if let Some(out) = args.get("out") {
            println!("report written to {out}");
        }
    }
    Ok(())
}

/// Runs one [`ScenarioSpec`] through both engines — the tick-aggregated
/// closed loop and the query-level event engine — and reports the
/// differential (DESIGN.md §14): utilization gauges must be
/// byte-identical, latency percentiles agree within the convergence band.
fn cmd_converge(args: &HashMap<String, String>) -> Result<(), String> {
    if args.contains_key("workload") || args.contains_key("replay-trace") {
        return cmd_converge_workload(args);
    }
    if args.contains_key("record-trace") {
        return Err("--record-trace needs --workload (the trace header embeds the spec)".into());
    }
    let seed = parse(get_or(args, "seed", "42"), "u64")?;
    let inst = if args.contains_key("inst") {
        load_instance(args)?
    } else {
        generate(&SynthConfig {
            n_machines: parse(get_or(args, "machines", "8"), "usize")?,
            n_exchange: parse(get_or(args, "exchange", "0"), "usize")?,
            n_shards: parse(get_or(args, "shards", "64"), "usize")?,
            dims: 1,
            stringency: 0.4,
            placement: Placement::BalancedBfd,
            seed,
            ..Default::default()
        })
        .map_err(|e| e.to_string())?
    };
    let mut spec = ScenarioSpec {
        ticks: parse(get_or(args, "ticks", "600"), "u64")?,
        qps_per_tick: parse(get_or(args, "qps", "4"), "f64")?,
        fanout: parse(get_or(args, "fanout", "4"), "usize")?,
        seed,
        ..Default::default()
    };
    if args.contains_key("spike-at") {
        spec.spike = Some(SpikeSpec {
            at_tick: parse(get(args, "spike-at")?, "u64")?,
            duration_ticks: parse(get_or(args, "spike-duration", "200"), "u64")?,
            factor: parse(get_or(args, "spike-factor", "2"), "f64")?,
            shard_fraction: parse(get_or(args, "spike-fraction", "0.1"), "f64")?,
        });
    }
    if args.contains_key("crash-at") {
        spec.crash = Some(CrashSpec {
            at_tick: parse(get(args, "crash-at")?, "u64")?,
            machine: parse(get_or(args, "crash-machine", "0"), "usize")?,
            recover_at_tick: args
                .get("recover-at")
                .map(|v| parse(v, "u64"))
                .transpose()?,
        });
    }
    if args.contains_key("sra-every") {
        spec.sra = Some(SraSpec {
            every_ticks: parse(get(args, "sra-every")?, "u64")?,
            iters: parse(get_or(args, "sra-iters", "300"), "u64")?,
        });
    }
    // A flag-built spec can be out of range (e.g. --spike-at past the
    // horizon): surface the typed error instead of panicking downstream.
    spec.validate()
        .map_err(|e| format!("invalid scenario: {e}"))?;
    let policy = get_or(args, "policy", "round_robin").parse::<PolicyKind>()?;
    let tick = Simulation::from_scenario(inst.clone(), &spec).run();
    let event = Simulation::from_scenario_event(inst, &spec, policy, has(args, "ewma")).run();
    converge_report(args, &spec, policy, &tick, &event)
}

/// The workload-plane arm of `converge`: one spec (or recorded trace)
/// through both engines — rack crashes forward through `set_failed` and
/// evacuation in each, and the differential contract is unchanged:
/// utilization gauges must match byte for byte.
fn cmd_converge_workload(args: &HashMap<String, String>) -> Result<(), String> {
    let (w, inst, replay) = workload_inputs(
        args,
        SynthConfig {
            n_machines: 8,
            n_exchange: 0,
            n_shards: 64,
            dims: 1,
            stringency: 0.4,
            placement: Placement::BalancedBfd,
            ..Default::default()
        },
    )?;
    if w.load.is_some() {
        return Err(
            "the event engine has no load-script counterpart: converge runs the \
             scenario/fleet/rack planes only — drive load scripts through simulate"
                .into(),
        );
    }
    let policy = get_or(args, "policy", "round_robin").parse::<PolicyKind>()?;
    let mut tick_sim = Simulation::from_workload(inst.clone(), &w);
    let mut event_sim =
        Simulation::from_workload_event(inst.clone(), &w, policy, has(args, "ewma"));
    if let Some(script) = replay {
        tick_sim.set_replay(script.clone());
        event_sim.set_replay(script);
    }
    let (tick, lines) = if args.contains_key("record-trace") {
        tick_sim.run_recorded(&mut Recorder::noop())
    } else {
        (tick_sim.run(), Vec::new())
    };
    let event = event_sim.run();
    if let Some(path) = args.get("record-trace") {
        std::fs::write(path, trace::write_jsonl(&w, &inst, &lines)).map_err(|e| e.to_string())?;
        if !has(args, "quiet") {
            println!("workload trace ({} events) written to {path}", lines.len());
        }
    }
    converge_report(args, &w.scenario, policy, &tick, &event)
}

/// The differential check and roll-up both `converge` arms share.
fn converge_report(
    args: &HashMap<String, String>,
    spec: &ScenarioSpec,
    policy: PolicyKind,
    tick: &MetricsExport,
    event: &MetricsExport,
) -> Result<(), String> {
    let tick_gauges = serde_json::to_string(&tick.gauges).map_err(|e| e.to_string())?;
    let event_gauges = serde_json::to_string(&event.gauges).map_err(|e| e.to_string())?;
    if tick_gauges != event_gauges {
        return Err("utilization gauges diverged between engines (DESIGN.md §14)".into());
    }
    if let Some(out) = args.get("out") {
        // Both exports already serialize themselves; compose the file by
        // hand (the vendored derive shim rejects borrowed wrapper structs).
        let json = format!(
            "{{\n\"tick\": {},\n\"event\": {}\n}}\n",
            tick.to_json(),
            event.to_json()
        );
        std::fs::write(out, json).map_err(|e| e.to_string())?;
    }
    if !has(args, "quiet") {
        let band = |a: f64, b: f64| (a - b).abs() / a.max(b);
        println!(
            "converge: policy {policy:?} seed {} | {} ticks, {} qps/tick",
            spec.seed, spec.ticks, spec.qps_per_tick
        );
        println!("utilization gauges: byte-identical across engines");
        println!(
            "latency (service units): tick p50 {:.2} p99 {:.2} | event p50 {:.2} p99 {:.2}",
            tick.latency.p50, tick.latency.p99, event.latency.p50, event.latency.p99
        );
        println!(
            "p99 error band: {:.1}%",
            100.0 * band(tick.latency.p99, event.latency.p99)
        );
        if let Some(out) = args.get("out") {
            println!("exports written to {out}");
        }
    }
    Ok(())
}

/// Runs one traced SRA solve (instance loaded from `--inst` or synthesized
/// on the spot) and prints the trace roll-up; `--out` additionally writes
/// the JSONL event stream. The trace is a pure function of the instance and
/// the flags — two same-flag invocations write byte-identical JSONL.
fn cmd_trace(args: &HashMap<String, String>) -> Result<(), String> {
    let seed = parse(get_or(args, "seed", "42"), "u64")?;
    let inst = if args.contains_key("inst") {
        load_instance(args)?
    } else {
        generate(&SynthConfig {
            n_machines: parse(get_or(args, "machines", "16"), "usize")?,
            n_exchange: parse(get_or(args, "exchange", "2"), "usize")?,
            n_shards: parse(get_or(args, "shards", "160"), "usize")?,
            placement: Placement::Hotspot(0.4),
            seed,
            ..Default::default()
        })
        .map_err(|e| e.to_string())?
    };
    let cfg = solver_config(args, "4000", &inst)?;
    let mut rec = Recorder::active();
    let res = solve_traced(&inst, &cfg, &[], &mut rec).map_err(|e| e.to_string())?;
    if let Some(out) = args.get("out") {
        std::fs::write(out, rec.to_jsonl()).map_err(|e| e.to_string())?;
    }
    print!("{}", rec.summary());
    println!(
        "solve: objective {:.6}, peak {:.4} -> {:.4}, {} iterations",
        res.objective_value, res.initial_report.peak, res.final_report.peak, res.iterations
    );
    if let Some(out) = args.get("out") {
        println!("trace written to {out}");
    }
    Ok(())
}

const USAGE: &str =
    "usage: rex <generate|inspect|solve|baseline|verify|simulate|route|converge|trace> [--flag value | --flag=value | --switch]...
  generate --out FILE [--family uniform|zipf|correlated|big-shards]
           [--placement hotspot|balanced|drift] [--machines N] [--exchange N]
           [--shards N] [--dims N] [--stringency F] [--alpha F] [--seed N]
           [--profile homogeneous|two-tier|big-exchange]
  inspect  --inst FILE
  solve    --inst FILE [--iters N] [--workers N] [--partitions K] [--depth D]
           [--seed N] [--out FILE]
           [--drain M1,M2,...]   (machines to decommission: must end vacant)
  baseline --inst FILE [--method greedy|local-search|ffd]
  verify   --inst FILE --solution FILE
  simulate [--inst FILE | --machines N --shards N --exchange N]
           [--ticks N] [--seed N] [--controller off|greedy|sra] [--qps F]
           [--crash-at T --crash-machine M [--recover-at T]]
           [--spike-at T [--spike-duration N] [--spike-factor F] [--spike-fraction F]]
           [--drift-every N] [--no-drift] [--out FILE] [--trace FILE] [--quiet]
           [--hotshard [--split-threshold F] [--merge-threshold F]
            [--hotshard-poll N] [--hotshard-expiry N]]
           (--hotshard turns on the continuous split/merge control plane)
           [--workload FILE [--record-trace FILE] | --replay-trace FILE]
           (workload mode: one engine-neutral spec drives the fleet table,
            rack crashes, diurnal envelope, and popularity drift; the
            scenario flags above are owned by the spec. --record-trace
            captures the realized fault/demand stream as JSONL;
            --replay-trace reruns a recording byte-identically)
  route    [--inst FILE | --machines N --shards N --exchange N]
           [--policy random|round_robin|power_of_d|prequal|token] [--d N]
           [--horizon US] [--qps F] [--replication R] [--fanout K] [--service US]
           [--spike-at T [--spike-duration N] [--spike-factor F] [--spike-fraction F]]
           [--sra [--sra-every US] [--sra-iters N]] [--seed N]
           [--out FILE] [--trace FILE] [--quiet] [--workload FILE]
           (query-level event engine: routes individual queries to shard
            replicas; --sra couples mid-run resource-exchange solves;
            --workload lowers a spec's scenario plane instead of the flags)
  converge [--inst FILE | --machines N --shards N --exchange N]
           [--ticks N] [--qps F] [--fanout K] [--seed N]
           [--policy random|round_robin|power_of_d|prequal|token] [--ewma]
           [--crash-at T [--crash-machine M] [--recover-at T]]
           [--spike-at T [--spike-duration N] [--spike-factor F] [--spike-fraction F]]
           [--sra-every N [--sra-iters N]] [--out FILE] [--quiet]
           [--workload FILE [--record-trace FILE] | --replay-trace FILE]
           (one scenario through both engines — tick aggregates and query
            events; errors out unless utilization gauges are byte-identical.
            workload mode runs the spec's scenario/fleet/rack planes — load
            scripts are tick-engine-only, use simulate)
  trace    [--inst FILE | --machines N --shards N --exchange N]
           [--iters N] [--workers N] [--partitions K] [--depth D] [--seed N]
           [--out FILE]
           (one traced SRA solve: prints the roll-up, --out writes JSONL)

Solver scaling (shared by solve/trace): --workers W runs a W-way
independent portfolio, --partitions K the cooperative decomposed solver
over K shard-disjoint neighborhoods, and --depth D (with K > 1) the
hierarchical decomposition that re-partitions each neighborhood
recursively to depth D for web-scale fleets; all are deterministic for a
fixed seed regardless of thread count (REX_THREADS). Out-of-range solver
flags are rejected before the search starts (e.g. --iters 0, --depth 0,
--partitions exceeding the fleet).";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if cmd == "--help" || cmd == "help" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match spec_of(cmd) {
        None => Err(format!("unknown command `{cmd}`\n{USAGE}")),
        Some(spec) => parse_args(rest, spec).and_then(|args| match cmd.as_str() {
            "generate" => cmd_generate(&args),
            "inspect" => cmd_inspect(&args),
            "solve" => cmd_solve(&args),
            "baseline" => cmd_baseline(&args),
            "verify" => cmd_verify(&args),
            "simulate" => cmd_simulate(&args),
            "route" => cmd_route(&args),
            "converge" => cmd_converge(&args),
            "trace" => cmd_trace(&args),
            _ => unreachable!("spec_of and the dispatch table agree"),
        }),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn simulate_trace_is_deterministic_and_wired() {
        let dir = std::env::temp_dir().join("rex-cli-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let (ta, tb) = (dir.join("a.jsonl"), dir.join("b.jsonl"));
        let run = |out: &Path| {
            cmd_simulate(&args(&[
                ("machines", "8"),
                ("shards", "48"),
                ("exchange", "1"),
                ("ticks", "600"),
                ("seed", "5"),
                ("controller", "sra"),
                ("trace", out.to_str().unwrap()),
                ("quiet", ""),
            ]))
            .unwrap();
        };
        run(&ta);
        run(&tb);
        let (ja, jb) = (
            std::fs::read_to_string(&ta).unwrap(),
            std::fs::read_to_string(&tb).unwrap(),
        );
        assert!(!ja.is_empty(), "trace must contain events");
        assert_eq!(ja, jb, "same-seed traces must be byte-identical");
        assert!(ja.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(ja.contains("\"layer\":\"runtime\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_command_writes_solver_trace() {
        let dir = std::env::temp_dir().join("rex-cli-trace-cmd");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.jsonl");
        cmd_trace(&args(&[
            ("machines", "6"),
            ("shards", "30"),
            ("exchange", "1"),
            ("iters", "400"),
            ("seed", "3"),
            ("out", out.to_str().unwrap()),
        ]))
        .unwrap();
        let jsonl = std::fs::read_to_string(&out).unwrap();
        assert!(jsonl.contains("\"layer\":\"sra\""));
        assert!(jsonl.contains("\"layer\":\"lns\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_solve_verify_roundtrip() {
        let dir = std::env::temp_dir().join("rex-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.json");
        let sol_path = dir.join("sol.json");

        cmd_generate(&args(&[
            ("out", inst_path.to_str().unwrap()),
            ("machines", "6"),
            ("exchange", "1"),
            ("shards", "30"),
            ("seed", "3"),
        ]))
        .unwrap();

        let common = [("inst", inst_path.to_str().unwrap())];
        cmd_inspect(&args(&common)).unwrap();

        cmd_solve(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("iters", "500"),
            ("out", sol_path.to_str().unwrap()),
        ]))
        .unwrap();

        cmd_verify(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("solution", sol_path.to_str().unwrap()),
        ]))
        .unwrap();

        cmd_baseline(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("method", "greedy"),
        ]))
        .unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_rejects_tampered_solutions() {
        let dir = std::env::temp_dir().join("rex-cli-tamper");
        std::fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.json");
        let sol_path = dir.join("sol.json");
        cmd_generate(&args(&[
            ("out", inst_path.to_str().unwrap()),
            ("machines", "4"),
            ("exchange", "1"),
            ("shards", "16"),
        ]))
        .unwrap();
        cmd_solve(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("iters", "300"),
            ("out", sol_path.to_str().unwrap()),
        ]))
        .unwrap();
        // Tamper: claim a different final placement than the plan reaches.
        let mut sol: SolutionFile =
            serde_json::from_str(&std::fs::read_to_string(&sol_path).unwrap()).unwrap();
        sol.placement[0] = MachineId(if sol.placement[0].0 == 0 { 1 } else { 0 });
        std::fs::write(&sol_path, serde_json::to_string(&sol).unwrap()).unwrap();
        assert!(cmd_verify(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("solution", sol_path.to_str().unwrap()),
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_family_is_rejected() {
        let e = cmd_generate(&args(&[("out", "/tmp/x.json"), ("family", "nope")]));
        assert!(e.is_err());
    }

    #[test]
    fn solver_flags_are_validated_at_the_boundary() {
        let dir = std::env::temp_dir().join("rex-cli-validate");
        std::fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.json");
        cmd_generate(&args(&[
            ("out", inst_path.to_str().unwrap()),
            ("machines", "4"),
            ("exchange", "1"),
            ("shards", "16"),
        ]))
        .unwrap();
        // --iters 0 and --partitions > fleet are typed config errors, not
        // panics or silent clamps.
        let e = cmd_solve(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("iters", "0"),
        ]))
        .unwrap_err();
        assert!(e.contains("iters"), "{e}");
        let e = cmd_solve(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("partitions", "99"),
        ]))
        .unwrap_err();
        assert!(e.contains("partitions") && e.contains("99"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_same_seed_writes_identical_metrics() {
        let dir = std::env::temp_dir().join("rex-cli-sim");
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b) = (dir.join("a.json"), dir.join("b.json"));
        let run = |out: &Path| {
            cmd_simulate(&args(&[
                ("machines", "8"),
                ("shards", "48"),
                ("exchange", "1"),
                ("ticks", "600"),
                ("seed", "5"),
                ("controller", "sra"),
                ("crash-at", "200"),
                ("spike-at", "300"),
                ("out", out.to_str().unwrap()),
                ("quiet", ""),
            ]))
            .unwrap();
        };
        run(&a);
        run(&b);
        let (ja, jb) = (
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap(),
        );
        assert!(!ja.is_empty());
        assert_eq!(ja, jb, "same-seed simulate must be byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_rejects_bad_controller() {
        let e = cmd_simulate(&args(&[("controller", "nope"), ("ticks", "10")]));
        assert!(e.is_err());
    }

    #[test]
    fn simulate_summary_gates_hotshard_block_on_the_flag() {
        // Regression: the hotshard block used to appear only when its
        // counters were nonzero, so `--hotshard` runs where the plane
        // stayed idle printed nothing — indistinguishable from the plane
        // being off. The block must track the flag, not the counters.
        let inst = generate(&SynthConfig {
            n_machines: 6,
            n_exchange: 1,
            n_shards: 30,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        let cfg = RuntimeConfig {
            ticks: 80,
            seed: 7,
            qps: 4.0,
            ..Default::default()
        };
        let export = Simulation::new(inst, cfg).run_traced(&mut Recorder::noop());
        // No faults, hotshard disabled in cfg: every hotshard counter is 0.
        let with_plane = simulate_summary(&export, true);
        assert!(
            with_plane.contains("hotshard: 0 splits, 0 merges"),
            "an enabled-but-idle plane must report its zeros:\n{with_plane}"
        );
        let without_plane = simulate_summary(&export, false);
        assert!(
            !without_plane.contains("hotshard"),
            "a disabled plane must stay out of the summary:\n{without_plane}"
        );
        // Both variants still carry the rest of the roll-up.
        for s in [&with_plane, &without_plane] {
            assert!(s.contains("queries:") && s.contains("peak:"));
        }
    }

    #[test]
    fn route_same_seed_writes_identical_report() {
        let dir = std::env::temp_dir().join("rex-cli-route");
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b) = (dir.join("a.json"), dir.join("b.json"));
        let run = |out: &Path| {
            cmd_route(&args(&[
                ("machines", "8"),
                ("shards", "64"),
                ("horizon", "20000"),
                ("qps", "15000"),
                ("service", "400"),
                ("policy", "prequal"),
                ("seed", "11"),
                ("spike-at", "5000"),
                ("spike-duration", "5000"),
                ("sra", ""),
                ("sra-every", "6000"),
                ("sra-iters", "200"),
                ("out", out.to_str().unwrap()),
                ("quiet", ""),
            ]))
            .unwrap();
        };
        run(&a);
        run(&b);
        let (ja, jb) = (
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap(),
        );
        assert!(!ja.is_empty());
        assert_eq!(ja, jb, "same-seed route must be byte-identical");
        // The flags reached the engine: prequal probed, the coupling ran.
        let field = |name: &str| -> u64 {
            ja.split(&format!("\"{name}\": "))
                .nth(1)
                .unwrap_or_else(|| panic!("report carries {name}"))
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap()
        };
        assert!(field("queries") > 0);
        assert!(field("probes_sent") > 0, "prequal must probe");
        assert!(field("sra_solves") > 0, "--sra must couple the solver");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn route_rejects_bad_policy() {
        let e = cmd_route(&args(&[("policy", "nope"), ("horizon", "1000")]));
        assert!(e.unwrap_err().contains("nope"));
    }

    #[test]
    fn simulate_hotshard_flags_are_wired_and_deterministic() {
        let dir = std::env::temp_dir().join("rex-cli-hotshard");
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b) = (dir.join("a.json"), dir.join("b.json"));
        let run = |out: &Path| {
            cmd_simulate(&args(&[
                ("machines", "8"),
                ("shards", "48"),
                ("exchange", "1"),
                ("ticks", "800"),
                ("seed", "5"),
                ("controller", "off"),
                ("hotshard", ""),
                ("split-threshold", "0.4"),
                ("merge-threshold", "0.15"),
                ("hotshard-poll", "20"),
                ("spike-at", "100"),
                ("spike-duration", "300"),
                ("spike-factor", "2.5"),
                ("spike-fraction", "0.02"),
                ("no-drift", ""),
                ("out", out.to_str().unwrap()),
                ("quiet", ""),
            ]))
            .unwrap();
        };
        run(&a);
        run(&b);
        let (ja, jb) = (
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap(),
        );
        assert_eq!(ja, jb, "same-seed hotshard simulate must be byte-identical");
        // The switch must actually reach the simulation: the export carries
        // the hotshard counters, and this scenario drives at least a split.
        let splits: u64 = ja
            .split("\"shard_splits\": ")
            .nth(1)
            .expect("export carries the shard_splits counter")
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap();
        assert!(splits >= 1, "hotshard switch did not reach the runtime");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A small full-plane workload spec (heterogeneous fleet, load script,
    /// rack crash, flash crowd) as a JSON file on disk.
    fn write_workload(dir: &Path) -> std::path::PathBuf {
        let path = dir.join("workload.json");
        std::fs::write(
            &path,
            r#"{
              "scenario": {
                "ticks": 500, "tick_us": 1000, "qps_per_tick": 6.0,
                "fanout": 4, "base_service_us": 100.0, "rho_max": 0.95,
                "seed": 11,
                "spike": {"at_tick": 100, "duration_ticks": 80,
                          "factor": 1.6, "shard_fraction": 0.08},
                "crash": null,
                "sra": {"every_ticks": 100, "iters": 300}
              },
              "fleet": {
                "generations": [
                  {"name": "gen-a", "count": 3, "scale": 1.0},
                  {"name": "gen-b", "count": 3, "scale": 2.0}
                ],
                "exchange": 1, "exchange_scale": 2.0, "racks": 2
              },
              "load": {
                "diurnal_amplitude": 0.2, "ticks_per_hour": 200,
                "zipf_alpha": 0.9, "drift_every_ticks": 150,
                "swaps_per_epoch": 20, "target_utilization": 0.55
              },
              "rack_crashes": [
                {"at_tick": 200, "rack": 1, "recover_at_tick": 350}
              ]
            }"#,
        )
        .unwrap();
        path
    }

    #[test]
    fn simulate_workload_records_and_replays_byte_identically() {
        let dir = std::env::temp_dir().join("rex-cli-workload");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = write_workload(&dir);
        let (trace, a, b) = (dir.join("t.jsonl"), dir.join("a.json"), dir.join("b.json"));
        cmd_simulate(&args(&[
            ("workload", spec.to_str().unwrap()),
            ("shards", "48"),
            ("record-trace", trace.to_str().unwrap()),
            ("out", a.to_str().unwrap()),
            ("quiet", ""),
        ]))
        .unwrap();
        // Replay is self-contained: no --workload, no synth flags needed.
        cmd_simulate(&args(&[
            ("replay-trace", trace.to_str().unwrap()),
            ("out", b.to_str().unwrap()),
            ("quiet", ""),
        ]))
        .unwrap();
        let (ja, jb) = (
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap(),
        );
        assert_eq!(ja, jb, "replayed metrics must be byte-identical");
        // The full plane actually ran: rack crash (3 machines of rack 1)
        // and popularity epochs show in the counters.
        assert!(ja.contains("\"crashes\": 3"), "rack crash must expand");
        assert!(!ja.contains("\"popularity_epochs\": 0"));
        let tracefile = std::fs::read_to_string(&trace).unwrap();
        assert!(tracefile.lines().count() > 1, "trace has header + events");
        assert!(tracefile.contains("\"kind\":\"popularity\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn converge_runs_the_rackfault_example_and_replays_it() {
        let dir = std::env::temp_dir().join("rex-cli-workload-conv");
        std::fs::create_dir_all(&dir).unwrap();
        let (trace, a, b) = (dir.join("t.jsonl"), dir.join("a.json"), dir.join("b.json"));
        cmd_converge(&args(&[
            ("workload", "examples/workload_rackfault.json"),
            ("shards", "48"),
            ("policy", "power_of_d"),
            ("record-trace", trace.to_str().unwrap()),
            ("out", a.to_str().unwrap()),
            ("quiet", ""),
        ]))
        .unwrap();
        cmd_converge(&args(&[
            ("replay-trace", trace.to_str().unwrap()),
            ("policy", "power_of_d"),
            ("out", b.to_str().unwrap()),
            ("quiet", ""),
        ]))
        .unwrap();
        let (ja, jb) = (
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap(),
        );
        assert_eq!(ja, jb, "replayed converge exports must be byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn route_accepts_the_scenario_plane_of_a_workload() {
        let dir = std::env::temp_dir().join("rex-cli-workload-route");
        std::fs::create_dir_all(&dir).unwrap();
        // The rackfault example carries rack crashes → route refuses it.
        let e = cmd_route(&args(&[
            ("workload", "examples/workload_rackfault.json"),
            ("quiet", ""),
        ]))
        .unwrap_err();
        assert!(e.contains("closed loop"), "{e}");
        // A degenerate (scenario-only) spec routes fine.
        let spec = dir.join("plain.json");
        std::fs::write(
            &spec,
            r#"{"scenario": {"ticks": 200, "tick_us": 1000, "qps_per_tick": 4.0,
                "fanout": 4, "base_service_us": 100.0, "rho_max": 0.95,
                "seed": 3, "spike": null, "crash": null, "sra": null}}"#,
        )
        .unwrap();
        cmd_route(&args(&[
            ("workload", spec.to_str().unwrap()),
            ("machines", "8"),
            ("shards", "48"),
            ("quiet", ""),
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn workload_flag_misuse_is_rejected_with_typed_errors() {
        let dir = std::env::temp_dir().join("rex-cli-workload-err");
        std::fs::create_dir_all(&dir).unwrap();
        // Validation errors surface as Err with the spec's message, not a
        // panic: spike starting past the horizon.
        let bad = dir.join("bad.json");
        std::fs::write(
            &bad,
            r#"{"scenario": {"ticks": 100, "tick_us": 1000, "qps_per_tick": 4.0,
                "fanout": 4, "base_service_us": 100.0, "rho_max": 0.95,
                "seed": 3, "crash": null, "sra": null,
                "spike": {"at_tick": 500, "duration_ticks": 10,
                          "factor": 2.0, "shard_fraction": 0.1}}}"#,
        )
        .unwrap();
        let e = cmd_simulate(&args(&[("workload", bad.to_str().unwrap())])).unwrap_err();
        assert!(e.contains("horizon"), "{e}");
        // Mutually exclusive sources.
        let spec = write_workload(&dir);
        let e = cmd_simulate(&args(&[
            ("workload", spec.to_str().unwrap()),
            ("replay-trace", "whatever.jsonl"),
        ]))
        .unwrap_err();
        assert!(e.contains("choose one"), "{e}");
        // Recording needs the spec for the trace header.
        let e = cmd_simulate(&args(&[("record-trace", "t.jsonl")])).unwrap_err();
        assert!(e.contains("--workload"), "{e}");
        // Converge refuses load scripts (the event engine has none).
        let e = cmd_converge(&args(&[("workload", spec.to_str().unwrap())])).unwrap_err();
        assert!(e.contains("load-script"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn example_workload_files_stay_valid() {
        let het = load_workload("examples/workload_heterogeneous.json").unwrap();
        assert!(het.fleet.is_some() && het.load.is_some());
        assert_eq!(het.fleet.as_ref().unwrap().generations.len(), 3);
        let rack = load_workload("examples/workload_rackfault.json").unwrap();
        assert!(rack.load.is_none());
        assert_eq!(rack.rack_crashes.len(), 1);
    }
}
