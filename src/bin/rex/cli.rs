//! Table-driven argument parsing for the `rex` CLI.
//!
//! One registry ([`COMMANDS`]) declares, per command, which `--key value`
//! flags and which valueless `--switch` flags it accepts. Flags shared by
//! several commands exist exactly once, as named groups ([`SOLVER_FLAGS`],
//! [`SYNTH_FLAGS`], [`SEED_FLAG`]): `solve`, `trace`, and `simulate` draw
//! their common vocabulary from the same tables, so adding a solver knob
//! is a one-line registry change that reaches every entry path at once.
//!
//! The parser itself ([`parse_args`]) accepts `--key value`,
//! `--key=value`, and `--switch`; unrecognized keys, missing values,
//! repeated flags, switches given an `=value`, and bare positional words
//! are all hard errors — a typo must never be silently ignored.

use std::collections::HashMap;

/// Iteration/parallelism knobs shared by every command that runs the SRA
/// solver (`solve`, `trace`). Validated downstream by
/// `rex_core::SolveOptions`.
pub const SOLVER_FLAGS: &[&str] = &["iters", "workers", "partitions", "depth"];

/// On-the-spot instance synthesis, shared by `generate`, `simulate`, and
/// `trace`.
pub const SYNTH_FLAGS: &[&str] = &["machines", "exchange", "shards"];

/// Deterministic seed — accepted by every command that runs anything.
pub const SEED_FLAG: &[&str] = &["seed"];

/// The workload plane: an engine-neutral `WorkloadSpec` file plus the
/// trace record/replay pair. Shared by both engines' closed-loop commands
/// (`simulate`, `converge`); `route` accepts the spec file alone.
pub const WORKLOAD_FLAGS: &[&str] = &["workload", "record-trace", "replay-trace"];

/// What a command accepts: groups of `--key value` flags plus valueless
/// `--switch` flags.
pub struct ArgSpec {
    /// Groups of `--key value` flags (shared tables + per-command extras).
    pub values: &'static [&'static [&'static str]],
    /// `--flag` switches (present or absent, no value).
    pub switches: &'static [&'static str],
}

impl ArgSpec {
    fn is_value(&self, key: &str) -> bool {
        self.values.iter().any(|group| group.contains(&key))
    }

    fn is_switch(&self, key: &str) -> bool {
        self.switches.contains(&key)
    }
}

/// One row of the command registry.
pub struct CommandSpec {
    /// Command word as typed on the command line.
    pub name: &'static str,
    /// Flag vocabulary.
    pub spec: ArgSpec,
}

/// The flag registry: every command, its value flags (shared groups
/// first), and its switches.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "generate",
        spec: ArgSpec {
            values: &[
                SYNTH_FLAGS,
                SEED_FLAG,
                &[
                    "out",
                    "family",
                    "placement",
                    "hot-fraction",
                    "dims",
                    "stringency",
                    "alpha",
                    "profile",
                ],
            ],
            switches: &[],
        },
    },
    CommandSpec {
        name: "inspect",
        spec: ArgSpec {
            values: &[&["inst"]],
            switches: &[],
        },
    },
    CommandSpec {
        name: "solve",
        spec: ArgSpec {
            values: &[SOLVER_FLAGS, SEED_FLAG, &["inst", "out", "drain"]],
            switches: &[],
        },
    },
    CommandSpec {
        name: "baseline",
        spec: ArgSpec {
            values: &[&["inst", "method"]],
            switches: &[],
        },
    },
    CommandSpec {
        name: "verify",
        spec: ArgSpec {
            values: &[&["inst", "solution"]],
            switches: &[],
        },
    },
    CommandSpec {
        name: "simulate",
        spec: ArgSpec {
            values: &[
                SYNTH_FLAGS,
                SEED_FLAG,
                WORKLOAD_FLAGS,
                &[
                    "inst",
                    "ticks",
                    "controller",
                    "qps",
                    "out",
                    "crash-at",
                    "crash-machine",
                    "recover-at",
                    "spike-at",
                    "spike-duration",
                    "spike-factor",
                    "spike-fraction",
                    "drift-every",
                    "split-threshold",
                    "merge-threshold",
                    "hotshard-poll",
                    "hotshard-expiry",
                    "trace",
                ],
            ],
            switches: &["no-drift", "hotshard", "quiet"],
        },
    },
    CommandSpec {
        name: "trace",
        spec: ArgSpec {
            values: &[SOLVER_FLAGS, SEED_FLAG, SYNTH_FLAGS, &["inst", "out"]],
            switches: &[],
        },
    },
    CommandSpec {
        name: "route",
        spec: ArgSpec {
            values: &[
                SYNTH_FLAGS,
                SEED_FLAG,
                &[
                    "workload",
                    "inst",
                    "policy",
                    "horizon",
                    "qps",
                    "replication",
                    "fanout",
                    "service",
                    "d",
                    "spike-at",
                    "spike-duration",
                    "spike-factor",
                    "spike-fraction",
                    "sra-every",
                    "sra-iters",
                    "out",
                    "trace",
                ],
            ],
            switches: &["sra", "quiet"],
        },
    },
    CommandSpec {
        name: "converge",
        spec: ArgSpec {
            values: &[
                SYNTH_FLAGS,
                SEED_FLAG,
                WORKLOAD_FLAGS,
                &[
                    "inst",
                    "ticks",
                    "qps",
                    "fanout",
                    "policy",
                    "crash-at",
                    "crash-machine",
                    "recover-at",
                    "spike-at",
                    "spike-duration",
                    "spike-factor",
                    "spike-fraction",
                    "sra-every",
                    "sra-iters",
                    "out",
                ],
            ],
            switches: &["ewma", "quiet"],
        },
    },
];

/// The flag vocabulary of `cmd`, from the registry.
pub fn spec_of(cmd: &str) -> Option<&'static ArgSpec> {
    COMMANDS.iter().find(|c| c.name == cmd).map(|c| &c.spec)
}

/// Parses `--key value` / `--key=value` / `--switch` arguments against
/// `spec`. Switches are stored with an empty value; use [`has`] to query
/// them.
pub fn parse_args(args: &[String], spec: &ArgSpec) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let word = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{}`", args[i]))?;
        let entry = if let Some((key, value)) = word.split_once('=') {
            if spec.is_value(key) {
                i += 1;
                (key.to_string(), value.to_string())
            } else if spec.is_switch(key) {
                return Err(format!("--{key} does not take a value"));
            } else {
                return Err(format!("unrecognized flag --{key}"));
            }
        } else if spec.is_value(word) {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .ok_or_else(|| format!("--{word} needs a value"))?;
            i += 2;
            (word.to_string(), value.clone())
        } else if spec.is_switch(word) {
            i += 1;
            (word.to_string(), String::new())
        } else {
            return Err(format!("unrecognized flag --{word}"));
        };
        let key = entry.0.clone();
        if out.insert(entry.0, entry.1).is_some() {
            return Err(format!("--{key} given more than once"));
        }
    }
    Ok(out)
}

/// True when switch `key` was given.
pub fn has(args: &HashMap<String, String>, key: &str) -> bool {
    args.contains_key(key)
}

pub fn get<'a>(args: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    args.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{key}"))
}

pub fn get_or<'a>(args: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    args.get(key).map(String::as_str).unwrap_or(default)
}

pub fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("cannot parse `{s}` as {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn parse_args_happy_path() {
        let spec = spec_of("solve").unwrap();
        let a = parse_args(&argv(&["--inst", "x.json", "--iters", "5"]), spec).unwrap();
        assert_eq!(get(&a, "inst").unwrap(), "x.json");
        assert_eq!(get_or(&a, "iters", "1"), "5");
        assert_eq!(get_or(&a, "missing", "d"), "d");
    }

    #[test]
    fn parse_args_rejects_bad_shapes() {
        let spec = spec_of("solve").unwrap();
        assert!(parse_args(&argv(&["positional"]), spec).is_err());
        assert!(parse_args(&argv(&["--iters"]), spec).is_err());
        // A value flag immediately followed by another flag has no value.
        assert!(parse_args(&argv(&["--iters", "--seed", "3"]), spec).is_err());
    }

    #[test]
    fn parse_args_rejects_unknown_flags() {
        let spec = spec_of("solve").unwrap();
        let err = parse_args(&argv(&["--bogus", "1"]), spec).unwrap_err();
        assert!(err.contains("--bogus"), "error names the flag: {err}");
        // A valid flag of a *different* command is still unknown here.
        assert!(parse_args(&argv(&["--ticks", "100"]), spec).is_err());
    }

    #[test]
    fn parse_args_rejects_duplicates() {
        let spec = spec_of("solve").unwrap();
        assert!(parse_args(&argv(&["--seed", "1", "--seed", "2"]), spec).is_err());
    }

    #[test]
    fn parse_args_supports_valueless_switches() {
        let spec = spec_of("simulate").unwrap();
        let a = parse_args(&argv(&["--quiet", "--ticks", "50", "--no-drift"]), spec).unwrap();
        assert!(has(&a, "quiet"));
        assert!(has(&a, "no-drift"));
        assert!(!has(&a, "inst"));
        assert_eq!(get_or(&a, "ticks", "0"), "50");
        // Switches never consume the next word.
        let b = parse_args(&argv(&["--no-drift", "--quiet"]), spec).unwrap();
        assert!(has(&b, "no-drift") && has(&b, "quiet"));
        // Switches given a value: the value is a positional word → error.
        assert!(parse_args(&argv(&["--quiet", "yes"]), spec).is_err());
    }

    #[test]
    fn every_command_has_a_spec_and_unknowns_do_not() {
        for cmd in [
            "generate", "inspect", "solve", "baseline", "verify", "simulate", "trace", "route",
        ] {
            assert!(spec_of(cmd).is_some(), "missing spec for {cmd}");
        }
        assert!(spec_of("frobnicate").is_none());
    }

    #[test]
    fn parse_args_supports_equals_syntax() {
        let spec = spec_of("solve").unwrap();
        let a = parse_args(&argv(&["--inst=x.json", "--iters=5"]), spec).unwrap();
        assert_eq!(get(&a, "inst").unwrap(), "x.json");
        assert_eq!(get_or(&a, "iters", "1"), "5");
        // Mixed styles in one invocation.
        let b = parse_args(&argv(&["--inst=x.json", "--iters", "7"]), spec).unwrap();
        assert_eq!(get_or(&b, "iters", "1"), "7");
        // Values containing `=` split only on the first.
        let c = parse_args(&argv(&["--inst=a=b.json"]), spec).unwrap();
        assert_eq!(get(&c, "inst").unwrap(), "a=b.json");
        // An empty value is allowed by the syntax (caught downstream).
        let d = parse_args(&argv(&["--inst="]), spec).unwrap();
        assert_eq!(get(&d, "inst").unwrap(), "");
    }

    #[test]
    fn parse_args_equals_syntax_rejections() {
        let spec = spec_of("simulate").unwrap();
        // Switches never take `=value`.
        assert!(parse_args(&argv(&["--quiet=1"]), spec).is_err());
        // Unknown flags stay unknown with `=`.
        assert!(parse_args(&argv(&["--bogus=1"]), spec).is_err());
        // Duplicate detection spans both styles.
        assert!(parse_args(&argv(&["--seed=1", "--seed", "2"]), spec).is_err());
    }

    #[test]
    fn solver_commands_share_the_solver_flag_group() {
        // The shared registry is the point of this module: every solver
        // knob accepted by `solve` is accepted by `trace`, verbatim.
        for flag in SOLVER_FLAGS.iter().chain(SEED_FLAG) {
            for cmd in ["solve", "trace"] {
                let spec = spec_of(cmd).unwrap();
                assert!(spec.is_value(flag), "{cmd} must accept --{flag}");
            }
        }
        for flag in SYNTH_FLAGS {
            for cmd in ["generate", "simulate", "trace"] {
                let spec = spec_of(cmd).unwrap();
                assert!(spec.is_value(flag), "{cmd} must accept --{flag}");
            }
        }
    }

    #[test]
    fn workload_plane_flags_reach_both_engines() {
        for flag in WORKLOAD_FLAGS {
            for cmd in ["simulate", "converge"] {
                let spec = spec_of(cmd).unwrap();
                assert!(spec.is_value(flag), "{cmd} must accept --{flag}");
            }
        }
        // `route` takes the spec file but has no closed-loop trace pair.
        let route = spec_of("route").unwrap();
        assert!(route.is_value("workload"));
        assert!(!route.is_value("record-trace") && !route.is_value("replay-trace"));
    }
}
