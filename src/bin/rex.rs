//! `rex` — the command-line front end.
//!
//! ```text
//! rex generate --family correlated --machines 24 --exchange 3 --shards 240 \
//!              --stringency 0.8 --alpha 0.1 --seed 1 --out inst.json
//! rex inspect  --inst inst.json
//! rex solve    --inst inst.json --iters 8000 --workers 4 --out solution.json
//! rex baseline --inst inst.json --method greedy
//! rex verify   --inst inst.json --solution solution.json
//! ```
//!
//! Instances and solutions are JSON artifacts (bit-exact f64 round-trips),
//! so a solve on one machine can be verified on another.

use resource_exchange::baselines::{
    FfdRepacker, GreedyRebalancer, LocalSearchRebalancer, Rebalancer,
};
use resource_exchange::cluster::{
    verify_schedule, Assignment, BalanceReport, Instance, MachineId, MigrationPlan,
};
use resource_exchange::core::{solve_with_drain, SraConfig};
use resource_exchange::workload::io;
use resource_exchange::workload::synthetic::{
    generate, DemandFamily, MachineProfile, Placement, SynthConfig,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

/// A solved reassignment, as stored on disk.
#[derive(Serialize, Deserialize)]
struct SolutionFile {
    /// Final placement (machine per shard).
    placement: Vec<MachineId>,
    /// The migration schedule reaching it.
    plan: MigrationPlan,
    /// Machines handed back.
    returned: Vec<MachineId>,
}

/// Minimal `--key value` argument map (flags must all take a value).
fn parse_args(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{}`", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(out)
}

fn get<'a>(args: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    args.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{key}"))
}

fn get_or<'a>(args: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    args.get(key).map(String::as_str).unwrap_or(default)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("cannot parse `{s}` as {what}"))
}

fn load_instance(args: &HashMap<String, String>) -> Result<Instance, String> {
    let path = get(args, "inst")?;
    io::load(Path::new(path)).map_err(|e| format!("loading {path}: {e}"))
}

fn cmd_generate(args: &HashMap<String, String>) -> Result<(), String> {
    let family = match get_or(args, "family", "correlated") {
        "uniform" => DemandFamily::Uniform,
        "zipf" => DemandFamily::Zipf,
        "correlated" => DemandFamily::Correlated,
        "big-shards" => DemandFamily::BigShards,
        other => return Err(format!("unknown family `{other}`")),
    };
    let placement = match get_or(args, "placement", "hotspot") {
        "hotspot" => Placement::Hotspot(parse(get_or(args, "hot-fraction", "0.4"), "f64")?),
        "balanced" => Placement::BalancedBfd,
        "drift" => Placement::Drift,
        other => return Err(format!("unknown placement `{other}`")),
    };
    let cfg = SynthConfig {
        n_machines: parse(get_or(args, "machines", "16"), "usize")?,
        n_exchange: parse(get_or(args, "exchange", "2"), "usize")?,
        n_shards: parse(get_or(args, "shards", "160"), "usize")?,
        dims: parse(get_or(args, "dims", "3"), "usize")?,
        stringency: parse(get_or(args, "stringency", "0.75"), "f64")?,
        alpha: parse(get_or(args, "alpha", "0.1"), "f64")?,
        seed: parse(get_or(args, "seed", "0"), "u64")?,
        family,
        placement,
        profile: match get_or(args, "profile", "homogeneous") {
            "homogeneous" => MachineProfile::Homogeneous,
            "two-tier" => MachineProfile::TwoTier {
                big_fraction: 0.25,
                ratio: 2.0,
            },
            "big-exchange" => MachineProfile::BigExchange { factor: 2.0 },
            other => return Err(format!("unknown profile `{other}`")),
        },
    };
    let inst = generate(&cfg).map_err(|e| e.to_string())?;
    let out = get(args, "out")?;
    io::save(&inst, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} machines, {} shards) to {out}",
        inst.label,
        inst.n_machines(),
        inst.n_shards()
    );
    Ok(())
}

fn cmd_inspect(args: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(args)?;
    let asg = Assignment::from_initial(&inst);
    let report = BalanceReport::compute(&inst, &asg);
    println!("label:      {}", inst.label);
    println!(
        "machines:   {} (+{} exchange)",
        inst.n_machines() - inst.n_exchange(),
        inst.n_exchange()
    );
    println!("shards:     {}", inst.n_shards());
    println!("dims:       {}", inst.dims);
    println!("k_return:   {}", inst.k_return);
    println!("alpha:      {}", inst.alpha);
    println!("stringency: {:.4}", inst.stringency());
    println!("initial:    {report}");
    Ok(())
}

fn cmd_solve(args: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(args)?;
    let cfg = SraConfig {
        iters: parse(get_or(args, "iters", "10000"), "u64")?,
        workers: parse(get_or(args, "workers", "1"), "usize")?,
        seed: parse(get_or(args, "seed", "42"), "u64")?,
        ..Default::default()
    };
    // --drain 3,7 marks machines 3 and 7 for decommission.
    let drain: Vec<MachineId> = match args.get("drain") {
        None => Vec::new(),
        Some(list) => list
            .split(',')
            .map(|x| parse::<u32>(x.trim(), "machine id").map(MachineId))
            .collect::<Result<_, _>>()?,
    };
    let res = solve_with_drain(&inst, &cfg, &drain).map_err(|e| e.to_string())?;
    if !drain.is_empty() {
        println!("drained: {drain:?}");
    }
    println!("initial: {}", res.initial_report);
    println!("final:   {}", res.final_report);
    println!(
        "improvement {:.1}%, migration: {}, returned {:?}",
        100.0 * res.peak_improvement(),
        res.migration,
        res.returned_machines
    );
    if let Some(out) = args.get("out") {
        let file = SolutionFile {
            placement: res.assignment.placement().to_vec(),
            plan: res.plan,
            returned: res.returned_machines,
        };
        std::fs::write(
            out,
            serde_json::to_string_pretty(&file).map_err(|e| e.to_string())?,
        )
        .map_err(|e| e.to_string())?;
        println!("solution written to {out}");
    }
    Ok(())
}

fn cmd_baseline(args: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(args)?;
    let method: Box<dyn Rebalancer> = match get_or(args, "method", "greedy") {
        "greedy" => Box::new(GreedyRebalancer::default()),
        "local-search" => Box::new(LocalSearchRebalancer::default()),
        "ffd" => Box::new(FfdRepacker::default()),
        other => return Err(format!("unknown method `{other}`")),
    };
    let res = method.rebalance(&inst).map_err(|e| e.to_string())?;
    println!("method:  {}", method.name());
    println!("initial: {}", res.initial_report);
    println!("final:   {}", res.final_report);
    println!(
        "improvement {:.1}%, schedulable: {}, migration: {}",
        100.0 * res.peak_improvement(),
        res.schedulable,
        res.migration
    );
    Ok(())
}

fn cmd_verify(args: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(args)?;
    let path = get(args, "solution")?;
    let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let sol: SolutionFile = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    verify_schedule(&inst, &inst.initial, &sol.placement, &sol.plan).map_err(|e| e.to_string())?;
    let asg = Assignment::from_placement(&inst, sol.placement).map_err(|e| e.to_string())?;
    asg.check_target(&inst).map_err(|e| e.to_string())?;
    for m in &sol.returned {
        if !asg.is_vacant(*m) {
            return Err(format!("returned machine {m} is not vacant"));
        }
    }
    if sol.returned.len() < inst.k_return {
        return Err(format!(
            "only {} machines returned, {} required",
            sol.returned.len(),
            inst.k_return
        ));
    }
    println!(
        "OK: schedule verifies, target feasible, {} machines returned",
        sol.returned.len()
    );
    println!("final: {}", BalanceReport::compute(&inst, &asg));
    Ok(())
}

const USAGE: &str = "usage: rex <generate|inspect|solve|baseline|verify> [--flag value]...
  generate --out FILE [--family uniform|zipf|correlated|big-shards]
           [--placement hotspot|balanced|drift] [--machines N] [--exchange N]
           [--shards N] [--dims N] [--stringency F] [--alpha F] [--seed N]
           [--profile homogeneous|two-tier|big-exchange]
  inspect  --inst FILE
  solve    --inst FILE [--iters N] [--workers N] [--seed N] [--out FILE]
           [--drain M1,M2,...]   (machines to decommission: must end vacant)
  baseline --inst FILE [--method greedy|local-search|ffd]
  verify   --inst FILE --solution FILE";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = parse_args(rest).and_then(|args| match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "inspect" => cmd_inspect(&args),
        "solve" => cmd_solve(&args),
        "baseline" => cmd_baseline(&args),
        "verify" => cmd_verify(&args),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_args_happy_path() {
        let a = parse_args(&[
            "--inst".into(),
            "x.json".into(),
            "--iters".into(),
            "5".into(),
        ])
        .unwrap();
        assert_eq!(get(&a, "inst").unwrap(), "x.json");
        assert_eq!(get_or(&a, "iters", "1"), "5");
        assert_eq!(get_or(&a, "missing", "d"), "d");
    }

    #[test]
    fn parse_args_rejects_bad_shapes() {
        assert!(parse_args(&["positional".into()]).is_err());
        assert!(parse_args(&["--dangling".into()]).is_err());
    }

    #[test]
    fn generate_solve_verify_roundtrip() {
        let dir = std::env::temp_dir().join("rex-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.json");
        let sol_path = dir.join("sol.json");

        cmd_generate(&args(&[
            ("out", inst_path.to_str().unwrap()),
            ("machines", "6"),
            ("exchange", "1"),
            ("shards", "30"),
            ("seed", "3"),
        ]))
        .unwrap();

        let common = [("inst", inst_path.to_str().unwrap())];
        cmd_inspect(&args(&common)).unwrap();

        cmd_solve(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("iters", "500"),
            ("out", sol_path.to_str().unwrap()),
        ]))
        .unwrap();

        cmd_verify(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("solution", sol_path.to_str().unwrap()),
        ]))
        .unwrap();

        cmd_baseline(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("method", "greedy"),
        ]))
        .unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_rejects_tampered_solutions() {
        let dir = std::env::temp_dir().join("rex-cli-tamper");
        std::fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.json");
        let sol_path = dir.join("sol.json");
        cmd_generate(&args(&[
            ("out", inst_path.to_str().unwrap()),
            ("machines", "4"),
            ("exchange", "1"),
            ("shards", "16"),
        ]))
        .unwrap();
        cmd_solve(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("iters", "300"),
            ("out", sol_path.to_str().unwrap()),
        ]))
        .unwrap();
        // Tamper: claim a different final placement than the plan reaches.
        let mut sol: SolutionFile =
            serde_json::from_str(&std::fs::read_to_string(&sol_path).unwrap()).unwrap();
        sol.placement[0] = MachineId(if sol.placement[0].0 == 0 { 1 } else { 0 });
        std::fs::write(&sol_path, serde_json::to_string(&sol).unwrap()).unwrap();
        assert!(cmd_verify(&args(&[
            ("inst", inst_path.to_str().unwrap()),
            ("solution", sol_path.to_str().unwrap()),
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_family_is_rejected() {
        let e = cmd_generate(&args(&[("out", "/tmp/x.json"), ("family", "nope")]));
        assert!(e.is_err());
    }
}
