//! The controller in the loop, in one page.
//!
//! Builds a tight hotspot fleet, then runs the identical event sequence —
//! diurnal traffic, demand drift, a mid-run crash with recovery — under
//! two controller policies: `off` (fault evacuations only) and `sra` (the
//! paper's exchange-aware rebalancer). The comparison shows what
//! load-driven rebalancing buys in *operation*: a lower steady-state peak
//! and a shorter latency tail, with zero transient-constraint violations
//! even though the crash lands while a migration is in flight.
//!
//! ```sh
//! cargo run --release --example closed_loop
//! ```

use resource_exchange::runtime::{
    ControllerPolicy, DriftSpec, FaultSpec, MetricsExport, RuntimeConfig, Simulation,
};
use resource_exchange::workload::synthetic::{generate, Placement, SynthConfig};

fn run(policy: ControllerPolicy) -> MetricsExport {
    let inst = generate(&SynthConfig {
        n_machines: 16,
        n_exchange: 2,
        n_shards: 160,
        stringency: 0.65,
        placement: Placement::Hotspot(0.4),
        seed: 11,
        ..Default::default()
    })
    .expect("generate");

    let mut cfg = RuntimeConfig {
        ticks: 6_000,
        seed: 5,
        faults: vec![FaultSpec::Crash {
            at: 2_000,
            machine: 1,
            recover_at: Some(3_500),
        }],
        drift: Some(DriftSpec {
            every_ticks: 400,
            sigma: 0.15,
            target_utilization: 0.6,
        }),
        ..Default::default()
    };
    cfg.controller.policy = policy;
    Simulation::new(inst, cfg).run()
}

fn main() {
    println!("policy | steady peak | p50 | p99 | rebalances | violations");
    for policy in [ControllerPolicy::Off, ControllerPolicy::Sra] {
        let e = run(policy);
        assert_eq!(
            e.counters.transient_violations, 0,
            "the executor's independent capacity check must stay clean"
        );
        println!(
            "{:6} | {:11.4} | {:6.2} | {:6.2} | {:10} | {}",
            policy.name(),
            e.steady_state_peak(),
            e.latency.p50,
            e.latency.p99,
            e.counters.rebalances_completed,
            e.counters.transient_violations
        );
    }
    println!("\nSame seed, same faults — the only difference is the controller.");
}
