//! A tour of the observability layer (`rex-obs`), in one page.
//!
//! Runs one SRA solve and one closed-loop simulation with an active
//! [`Recorder`], then shows the three things a trace gives you:
//!
//! 1. a **narrative** — hierarchical spans and events, keyed by
//!    `(tick, seq)`, that say what the solver/controller decided and why;
//! 2. a **roll-up** — counters, gauges, and fixed-bucket histograms,
//!    rendered as a markdown summary;
//! 3. a **determinism proof** — the same seed replays to byte-identical
//!    JSONL, so a trace diff *is* a behavior diff (DESIGN.md §8).
//!
//! ```sh
//! cargo run --release --example trace_tour
//! ```

use resource_exchange::core::{solve_traced, SraConfig};
use resource_exchange::obs::Recorder;
use resource_exchange::runtime::{ControllerPolicy, RuntimeConfig, Simulation};
use resource_exchange::workload::synthetic::{generate, Placement, SynthConfig};

fn instance() -> resource_exchange::cluster::Instance {
    generate(&SynthConfig {
        n_machines: 12,
        n_exchange: 2,
        n_shards: 96,
        stringency: 0.8,
        placement: Placement::Hotspot(0.4),
        seed: 9,
        ..Default::default()
    })
    .expect("generate")
}

fn main() {
    // --- 1. Trace a solve -------------------------------------------------
    let inst = instance();
    let cfg = SraConfig {
        iters: 2_000,
        seed: 42,
        ..Default::default()
    };
    let mut rec = Recorder::active();
    let result = solve_traced(&inst, &cfg, &[], &mut rec).expect("solve");
    println!(
        "solve: peak {:.4} -> {:.4} over {} iterations\n",
        result.initial_report.peak, result.final_report.peak, result.iterations
    );

    // The narrative: spans nest (depth), events carry structured fields.
    println!("first 6 trace records:");
    let jsonl = rec.to_jsonl();
    for line in jsonl.lines().take(6) {
        println!("  {line}");
    }
    println!(
        "  ... {} records total, {} LNS iterations narrated\n",
        jsonl.lines().count(),
        rec.counter("lns.iterations")
    );

    // The roll-up: counters/gauges/histograms as markdown.
    println!("{}", rec.summary());

    // The determinism proof: same seed, same bytes.
    let mut rec2 = Recorder::active();
    solve_traced(&inst, &cfg, &[], &mut rec2).expect("solve");
    assert_eq!(jsonl, rec2.to_jsonl(), "same-seed traces must match");
    println!("replayed: second solve trace is byte-identical\n");

    // --- 2. Trace a closed-loop run --------------------------------------
    let run_cfg = RuntimeConfig {
        ticks: 3_000,
        seed: 7,
        controller: resource_exchange::runtime::ControllerConfig {
            policy: ControllerPolicy::Sra,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut sim_rec = Recorder::active();
    let export = Simulation::new(instance(), run_cfg).run_traced(&mut sim_rec);
    println!(
        "simulate: {} rebalances completed, {} moves committed",
        export.counters.rebalances_completed, export.counters.moves_committed
    );
    let decisions: Vec<&str> = ["trigger", "plan_adopted", "batch", "plan_done"]
        .into_iter()
        .filter(|name| sim_rec.events().iter().any(|e| e.name == *name))
        .collect();
    println!("controller decisions narrated: {}", decisions.join(", "));
    println!(
        "runtime.batches counter: {}",
        sim_rec.counter("runtime.batches")
    );
}
