//! Decommissioning under load: drain two machines out of a busy fleet.
//!
//! Two old machines must be handed back to the hardware team. Their shards
//! have to migrate away — under the same transient constraints as any
//! rebalancing — while the rest of the fleet stays balanced. A replacement
//! machine joins the fleet (an exchange machine with `k_return = 0`: a
//! permanent transfer, not a loan) to absorb part of the displaced load.
//!
//! ```sh
//! cargo run --example decommission
//! ```

use resource_exchange::cluster::{InstanceBuilder, MachineId};
use resource_exchange::core::{solve_with_drain, SraConfig};

fn main() {
    let mut b = InstanceBuilder::new(2)
        .alpha(0.1)
        .k_return(0)
        .label("decommission");
    let machines: Vec<MachineId> = (0..8).map(|_| b.machine(&[10.0, 10.0])).collect();
    let _x = b.exchange_machine(&[10.0, 10.0]);

    // ~70% utilization, slightly uneven.
    for i in 0..48 {
        let host = machines[i % 8];
        b.shard(&[1.0 + 0.2 * ((i % 3) as f64), 1.1], 1.0, host);
    }
    let inst = b.build().expect("valid instance");

    let drain = [machines[0], machines[5]];
    println!("draining {drain:?} out of an 8-machine fleet (+1 replacement)…");
    let res = solve_with_drain(
        &inst,
        &SraConfig {
            iters: 6_000,
            seed: 11,
            ..Default::default()
        },
        &drain,
    )
    .expect("drain must be feasible here");

    println!("initial: {}", res.initial_report);
    println!("final:   {}", res.final_report);
    for m in drain {
        assert!(res.assignment.is_vacant(m));
        println!("{m} is vacant and ready to unrack");
    }
    println!(
        "schedule: {} moves in {} batches",
        res.migration.total_moves, res.migration.batches
    );
    assert!(
        res.returned_machines.is_empty(),
        "permanent transfer: nothing to hand back"
    );
    assert!(
        res.final_report.peak < 0.9,
        "the replacement keeps the fleet serviceable"
    );
}
