//! The paper's motivating scenario, end to end: a document-partitioned
//! search engine whose shards have drifted out of balance.
//!
//! The example builds a corpus, indexes it into skew-sized shards, replays
//! a Zipf-skewed query log to measure per-shard CPU cost, converts the
//! measurements into a cluster instance, and then compares SRA against the
//! no-exchange greedy baseline.
//!
//! ```sh
//! cargo run --release --example search_datacenter
//! ```

use resource_exchange::baselines::{GreedyRebalancer, Rebalancer};
use resource_exchange::core::{solve, SraConfig};
use resource_exchange::searchsim::bridge::{build_instance, BridgeConfig};
use resource_exchange::searchsim::corpus::CorpusConfig;
use resource_exchange::searchsim::queries::QueryConfig;

fn main() {
    let cfg = BridgeConfig {
        corpus: CorpusConfig {
            n_docs: 8_000,
            vocab: 15_000,
            seed: 2024,
            ..Default::default()
        },
        queries: QueryConfig {
            n_queries: 5_000,
            seed: 2025,
            ..Default::default()
        },
        n_shards: 96,
        n_machines: 12,
        n_exchange: 2,
        stringency: 0.82,
        alpha: 0.15,
        ..Default::default()
    };
    println!("building corpus, index, and query workload…");
    let inst = build_instance(&cfg).expect("bridge pipeline");
    println!("instance: {}", inst.label);
    println!(
        "  {} machines (+{} exchange), {} shards, utilization {:.2}",
        inst.n_machines() - inst.n_exchange(),
        inst.n_exchange(),
        inst.n_shards(),
        inst.stringency() * inst.n_machines() as f64
            / (inst.n_machines() - inst.n_exchange()) as f64,
    );

    println!("\nrunning SRA (parallel portfolio, 4 workers)…");
    let sra = solve(
        &inst,
        &SraConfig {
            iters: 6_000,
            workers: 4,
            seed: 7,
            ..Default::default()
        },
    )
    .expect("SRA");

    println!("running greedy baseline (no exchange machines)…");
    let greedy = GreedyRebalancer::default()
        .rebalance(&inst)
        .expect("greedy");

    println!(
        "\n              {:>10} {:>10} {:>12}",
        "peak", "imbalance", "improvement"
    );
    println!(
        "initial       {:>10.4} {:>10.3} {:>12}",
        sra.initial_report.peak, sra.initial_report.imbalance, "—"
    );
    println!(
        "greedy        {:>10.4} {:>10.3} {:>11.1}%",
        greedy.final_report.peak,
        greedy.final_report.imbalance,
        100.0 * greedy.peak_improvement()
    );
    println!(
        "SRA           {:>10.4} {:>10.3} {:>11.1}%",
        sra.final_report.peak,
        sra.final_report.imbalance,
        100.0 * sra.peak_improvement()
    );
    println!(
        "\nSRA migration: {} moves, traffic {:.2}, {} batches; returned {:?}",
        sra.migration.total_moves,
        sra.migration.traffic,
        sra.migration.batches,
        sra.returned_machines
    );

    assert!(sra.final_report.peak <= greedy.final_report.peak + 1e-9);
}
