//! Quickstart: rebalance a small hotspotted cluster with one borrowed
//! exchange machine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use resource_exchange::cluster::InstanceBuilder;
use resource_exchange::core::{solve, SraConfig};

fn main() {
    // A 4-machine fleet where traffic drifted onto m0/m1, plus one
    // borrowed (initially vacant) exchange machine. Migrating a shard
    // transiently costs 10% extra on both ends (alpha = 0.1).
    let mut b = InstanceBuilder::new(2).alpha(0.1).label("quickstart");
    let m0 = b.machine(&[10.0, 10.0]);
    let m1 = b.machine(&[10.0, 10.0]);
    let m2 = b.machine(&[10.0, 10.0]);
    let m3 = b.machine(&[10.0, 10.0]);
    let _x = b.exchange_machine(&[10.0, 10.0]);

    // Hot machines: ~90% full. Cool machines: ~20%.
    for _ in 0..6 {
        b.shard(&[1.5, 1.0], 1.0, m0);
        b.shard(&[1.5, 1.0], 1.0, m1);
    }
    b.shard(&[2.0, 1.0], 1.0, m2);
    b.shard(&[2.0, 1.0], 1.0, m3);
    let inst = b.build().expect("valid instance");

    let result = solve(
        &inst,
        &SraConfig {
            iters: 5_000,
            seed: 1,
            ..Default::default()
        },
    )
    .expect("SRA solves valid instances");

    println!("initial: {}", result.initial_report);
    println!("final:   {}", result.final_report);
    println!(
        "peak improved by {:.1}% with {} moves in {} batches ({} staging hops)",
        100.0 * result.peak_improvement(),
        result.migration.total_moves,
        result.migration.batches,
        result.migration.extra_hops,
    );
    println!(
        "machines returned to the operator: {:?}",
        result.returned_machines
    );

    println!("\nmigration schedule:");
    for (i, batch) in result.plan.batches.iter().enumerate() {
        let moves: Vec<String> = batch
            .iter()
            .map(|m| format!("{}:{}→{}", m.shard, m.from, m.to))
            .collect();
        println!("  batch {i}: {}", moves.join(", "));
    }

    assert!(result.final_report.peak < result.initial_report.peak);
}
