//! Rebalancing for the traffic peak, not the daily mean.
//!
//! Query traffic is diurnal: the shard CPU profile at the evening peak is
//! not a scaled copy of the daily average, because term popularity and
//! query mix shift. This example measures per-shard cost in the peak hour
//! and in the trough, builds an instance for each, and shows that the
//! placements SRA picks for them differ — i.e., a fleet balanced for the
//! mean is not balanced for the peak.
//!
//! ```sh
//! cargo run --release --example diurnal_rebalance
//! ```

use resource_exchange::cluster::{Instance, InstanceBuilder, MachineId};
use resource_exchange::core::{solve, SraConfig};
use resource_exchange::searchsim::corpus::{Corpus, CorpusConfig};
use resource_exchange::searchsim::engine::SearchEngine;
use resource_exchange::searchsim::queries::{QueryConfig, QueryLog};
use resource_exchange::searchsim::shards::ShardingStrategy;

/// Builds an instance whose CPU dimension is the given per-shard cost
/// vector (mem/disk from the index), normalized to 75% fleet utilization.
fn instance_for(costs: &[u64], engine: &SearchEngine, label: &str) -> Instance {
    let n_machines = 8;
    let n_shards = costs.len();
    let scale = |v: Vec<f64>| -> Vec<f64> {
        let total: f64 = v.iter().sum();
        v.iter()
            .map(|x| x / total * n_machines as f64 * 0.75)
            .collect()
    };
    let cpu = scale(costs.iter().map(|&c| (c as f64).max(1.0)).collect());
    let mem = scale(
        (0..n_shards)
            .map(|i| engine.shard(i).size_bytes() as f64)
            .collect(),
    );

    let mut b = InstanceBuilder::new(2).alpha(0.1).label(label);
    let machines: Vec<MachineId> = (0..n_machines).map(|_| b.machine(&[1.0, 1.0])).collect();
    b.exchange_machine(&[1.0, 1.0]);
    // Place by memory only (the "laid out long ago" drift).
    let mut usage = vec![0.0f64; n_machines];
    let mut order: Vec<usize> = (0..n_shards).collect();
    order.sort_by(|&a, &b| mem[b].partial_cmp(&mem[a]).unwrap());
    let mut host_of = vec![0usize; n_shards];
    for &i in &order {
        let h = (0..n_machines)
            .min_by(|&a, &b| usage[a].partial_cmp(&usage[b]).unwrap())
            .unwrap();
        usage[h] += mem[i];
        host_of[i] = h;
    }
    for i in 0..n_shards {
        b.shard(&[cpu[i], mem[i]], mem[i], machines[host_of[i]]);
    }
    b.build().expect("valid instance")
}

fn main() {
    println!("building corpus, index, and a day of queries…");
    let corpus = Corpus::generate(&CorpusConfig {
        n_docs: 6_000,
        vocab: 12_000,
        seed: 99,
        ..Default::default()
    });
    let engine = SearchEngine::build(&corpus, 64, ShardingStrategy::SkewedRange);
    let log = QueryLog::generate(&QueryConfig {
        n_queries: 8_000,
        vocab: 12_000,
        seed: 100,
        ..Default::default()
    });
    let hourly = engine.replay_hourly(&log, 10);
    let by_hour: Vec<u64> = hourly.iter().map(|h| h.iter().sum()).collect();
    let peak_hour = (0..24).max_by_key(|&h| by_hour[h]).unwrap();
    let trough_hour = (0..24).min_by_key(|&h| by_hour[h]).unwrap();
    println!(
        "peak hour {peak_hour} carries {:.1}x the trough (hour {trough_hour}) traffic",
        by_hour[peak_hour] as f64 / by_hour[trough_hour].max(1) as f64
    );

    let peak_inst = instance_for(&hourly[peak_hour], &engine, "peak-hour");
    let trough_inst = instance_for(&hourly[trough_hour], &engine, "trough-hour");

    let cfg = SraConfig {
        iters: 4_000,
        seed: 5,
        ..Default::default()
    };
    let peak_res = solve(&peak_inst, &cfg).expect("peak solve");
    let trough_res = solve(&trough_inst, &cfg).expect("trough solve");

    println!(
        "peak-hour:   peak load {:.3} → {:.3} ({} moves)",
        peak_res.initial_report.peak, peak_res.final_report.peak, peak_res.migration.total_moves
    );
    println!(
        "trough-hour: peak load {:.3} → {:.3} ({} moves)",
        trough_res.initial_report.peak,
        trough_res.final_report.peak,
        trough_res.migration.total_moves
    );

    let differing = peak_res
        .assignment
        .placement()
        .iter()
        .zip(trough_res.assignment.placement())
        .filter(|(a, b)| a != b)
        .count();
    println!(
        "{differing}/{} shards are placed differently for peak vs trough traffic",
        peak_inst.n_shards()
    );
    assert!(peak_res.final_report.peak <= peak_res.initial_report.peak + 1e-9);
}
