//! Membership exchange during a hardware refresh.
//!
//! The operator lends two *larger* machines (a newer hardware generation)
//! as the exchange pool. SRA may keep them in service and hand back two
//! emptied legacy machines instead — the "return some vacant machines as
//! compensation" clause of the paper lets the fleet's composition improve
//! as a side effect of rebalancing.
//!
//! ```sh
//! cargo run --example hardware_refresh
//! ```

use resource_exchange::cluster::InstanceBuilder;
use resource_exchange::core::{solve, SraConfig};

fn main() {
    let mut b = InstanceBuilder::new(1).alpha(0.1).label("hardware-refresh");
    // Six legacy machines (capacity 10), well utilized.
    let legacy: Vec<_> = (0..6).map(|_| b.machine(&[10.0])).collect();
    // Two borrowed next-gen machines (capacity 25), initially vacant.
    let _x1 = b.exchange_machine(&[25.0]);
    let _x2 = b.exchange_machine(&[25.0]);

    // 36 shards spread over the legacy fleet at ~82% utilization (the
    // worst-loaded legacy machine carries 9.0 of 10).
    for i in 0..36 {
        b.shard(&[1.0 + 0.25 * ((i % 4) as f64)], 1.0, legacy[i % 6]);
    }
    let inst = b.build().expect("valid instance");

    let result = solve(
        &inst,
        &SraConfig {
            iters: 8_000,
            seed: 3,
            ..Default::default()
        },
    )
    .expect("SRA");

    println!("initial: {}", result.initial_report);
    println!("final:   {}", result.final_report);
    println!("returned machines: {:?}", result.returned_machines);

    let kept_exchange = (6..8)
        .filter(|&i| {
            !result
                .assignment
                .is_vacant(resource_exchange::cluster::MachineId(i))
        })
        .count();
    let returned_legacy = result
        .returned_machines
        .iter()
        .filter(|m| !inst.machines[m.idx()].exchange)
        .count();
    println!(
        "next-gen machines kept in service: {kept_exchange}; legacy machines handed back: {returned_legacy}"
    );
    if returned_legacy > 0 {
        println!("→ the exchange upgraded the fleet while rebalancing it.");
    }

    assert_eq!(result.returned_machines.len(), inst.k_return);
    assert!(result.final_report.peak <= result.initial_report.peak + 1e-9);
}
