//! The transient-constraint deadlock, isolated.
//!
//! Two machines near capacity hold mismatched shards; the only improving
//! rearrangement is a swap, but neither shard fits on the other machine
//! while both copies exist — without staging space the fleet is stuck,
//! exactly the situation the paper's abstract opens with. Lending a single
//! exchange machine unlocks it.
//!
//! ```sh
//! cargo run --example stringent_swap
//! ```

use resource_exchange::baselines::{GreedyRebalancer, LocalSearchRebalancer, Rebalancer};
use resource_exchange::cluster::{Instance, InstanceBuilder};
use resource_exchange::core::{solve, SraConfig};

fn build(with_exchange: bool) -> Instance {
    let mut b = InstanceBuilder::new(1).alpha(0.0).label("stringent-swap");
    let m0 = b.machine(&[10.0]);
    let m1 = b.machine(&[10.0]);
    if with_exchange {
        b.exchange_machine(&[10.0]);
    }
    // m0: 9.5 (peak machine); m1: 7.5. The improving rearrangement swaps
    // the 4.5 on m0 with the 3.0 on m1 (loads become 8.0 | 9.0), but
    // 7.5 + 4.5 and 9.5 + 3.0 both exceed capacity: neither leg can go
    // first. Plain moves are all capacity-infeasible.
    b.shard(&[5.0], 1.0, m0);
    b.shard(&[4.5], 1.0, m0);
    b.shard(&[4.5], 1.0, m1);
    b.shard(&[3.0], 1.0, m1);
    b.build().expect("valid instance")
}

fn main() {
    // Without exchange machines, both deployable baselines are stuck.
    let stuck = build(false);
    let ls = LocalSearchRebalancer::default()
        .rebalance(&stuck)
        .expect("local search");
    let gr = GreedyRebalancer::default()
        .rebalance(&stuck)
        .expect("greedy");
    println!(
        "no exchange:  local-search {:.3} → {:.3} ({} moves), greedy {:.3} → {:.3} ({} moves)",
        ls.initial_report.peak,
        ls.final_report.peak,
        ls.migration.total_moves,
        gr.initial_report.peak,
        gr.final_report.peak,
        gr.migration.total_moves
    );

    // With one borrowed machine, SRA stages the swap through it and hands
    // a vacant machine back afterwards.
    let unlocked = build(true);
    let sra = solve(
        &unlocked,
        &SraConfig {
            iters: 3_000,
            seed: 5,
            ..Default::default()
        },
    )
    .expect("SRA");
    println!(
        "one exchange: SRA {:.3} → {:.3} ({} moves, {} staging hops), returned {:?}",
        sra.initial_report.peak,
        sra.final_report.peak,
        sra.migration.total_moves,
        sra.migration.extra_hops,
        sra.returned_machines
    );
    println!("\nschedule:");
    for (i, batch) in sra.plan.batches.iter().enumerate() {
        let moves: Vec<String> = batch
            .iter()
            .map(|m| format!("{}:{}→{}", m.shard, m.from, m.to))
            .collect();
        println!("  batch {i}: {}", moves.join(", "));
    }

    assert_eq!(
        ls.migration.total_moves, 0,
        "local search must be transient-blocked"
    );
    assert_eq!(
        gr.migration.total_moves, 0,
        "greedy must be transient-blocked"
    );
    assert!(
        sra.final_report.peak < 0.95 - 1e-9,
        "SRA must break the deadlock"
    );
}
